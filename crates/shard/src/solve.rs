//! The sharded solve: shard workers, the hub, and the result type.
//!
//! Execution model (see `docs/sharding.md`):
//!
//! * `S` *shard workers*, ranks `0..S`, each own one contiguous row range
//!   of the fine grid (from `Hierarchy::partitions`). Per epoch a shard
//!   drains its inbox (halo values, coarse corrections, stop requests),
//!   smooths its own rows against its local snapshot, computes its residual
//!   segment, and fires halo values at its neighbours plus a residual
//!   segment and a partial norm at the hub. Nothing ever blocks: missing
//!   messages just mean this epoch smooths against slightly stale ghosts —
//!   the asynchronous model of the paper, recast over messages.
//! * One *hub*, rank `S`, assembles residual segments, runs the coarse
//!   half of the multiplicative cycle (`coarse_correction`) when every live
//!   shard has contributed a residual fresher than the last correction —
//!   and has acknowledged that correction (or run two epochs past it, the
//!   lost-correction valve) so corrections are never compounded from stale
//!   data — and broadcasts per-shard correction segments. It also runs the
//!   never-blocking norm reduction ([`NormReducer`]) and broadcasts
//!   `NormComplete`/`Stop`.
//!
//! Faults compose at the send boundary: a `FaultPlan`'s stragglers stall a
//! shard's epoch loop, crashes end it early, corruption garbles the first
//! outgoing data value of the epoch (receiver-side finiteness guards
//! reject the message and log `GuardTripped`), and drop faults suppress the
//! epoch's outgoing data wholesale — identically over any transport.
//!
//! # Recovery
//!
//! With [`ShardOptions::recovery`] armed the solve heals itself instead of
//! merely observing loss:
//!
//! * A crashed shard goes *silent* — no `Done`, no publication — and the
//!   hub's **failure detector** declares it dead after bounded silence:
//!   either the most advanced live shard ran
//!   [`silence_epochs`](crate::ShardRecovery::silence_epochs) past the
//!   silent shard's last heard epoch (progress-based, schedule-exact under
//!   `VirtualSched`), or [`silence`](crate::ShardRecovery::silence) of
//!   clock time passed (the backstop when nobody makes progress), or a
//!   reliable payload exhausted its retransmit budget. Time comes from the
//!   [`Clock`] abstraction, so `VirtualClock` replays are bit-identical.
//! * The hub then **adopts the rows away**: the nearest live shard's range
//!   grows over the dead one's (the hub's last received checkpoint seeds
//!   the adopted rows), `ShardMap::adopt` rewires the ghost lists on every
//!   participant, and the solve keeps running toward tolerance with one
//!   rank permanently gone. A geometry version stamped on every data
//!   message fences stale layouts and false-positive zombies.
//! * Corrections, adoptions and stop travel the **reliable control plane**
//!   (ack + bounded retransmit with exponential backoff) so recovery
//!   survives transports that drop or reorder; halos and other data stay
//!   fire-and-forget.
//!
//! With `recovery: None` (the default) none of this code runs and the
//! solve is bit-identical to the undefended model above.

use crate::halo::ShardMap;
use crate::msg::Msg;
use crate::recovery::{RecoveryReport, ReliableReceiver, ReliableSender, ShardRecovery};
use crate::reduce::{NormReducer, Reduction};
use crate::transport::{Transport, TransportStats};
use asyncmg_core::{coarse_correction, MgSetup, SolveOutcome, Workspace};
use asyncmg_sparse::vecops;
use asyncmg_telemetry::{FaultKind, FaultRecord, Probe, SolveTrace};
use asyncmg_threads::{
    run_teams_sched, Clock, FaultPlan, OsClock, RacyVec, Sched, SchedPoint, TeamCtx,
};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of a sharded solve.
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Number of shard workers (the hub adds one more rank).
    pub n_shards: usize,
    /// Epoch budget per shard.
    pub t_max: usize,
    /// Stop once a completed reduction falls below this relative residual.
    pub tolerance: Option<f64>,
    /// Smoothing sweeps per epoch.
    pub sweeps: usize,
    /// Damping applied to coarse corrections before they are sent.
    pub damping: f64,
    /// Self-healing knobs; `None` (the default) keeps the undefended
    /// model bit-identical to the pre-recovery behaviour.
    pub recovery: Option<ShardRecovery>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            n_shards: 2,
            t_max: 60,
            tolerance: None,
            sweeps: 1,
            damping: 1.0,
            recovery: None,
        }
    }
}

/// The outcome of a sharded solve.
#[derive(Clone, Debug)]
pub struct ShardResult {
    /// The assembled approximation.
    pub x: Vec<f64>,
    /// Exact relative residual, recomputed after the run.
    pub relres: f64,
    /// Whether the hub's reduction observed the tolerance met and broadcast
    /// `Stop` (release/acquire: schedule-independent).
    pub stopped_on_tolerance: bool,
    /// Structured outcome (faults degrade, non-finite results fault).
    pub outcome: SolveOutcome,
    /// Injected faults and guard trips, in occurrence order.
    pub faults: Vec<FaultRecord>,
    /// Epochs each shard completed.
    pub shard_epochs: Vec<u64>,
    /// Coarse-correction cycles the hub performed.
    pub hub_cycles: u64,
    /// Completed norm reductions, in publication order (strictly
    /// increasing epochs).
    pub reductions: Vec<Reduction>,
    /// Transport counter snapshot after the run (quiescent, so
    /// [`TransportStats::conserved`] must hold).
    pub stats: TransportStats,
    /// What recovery did (all-zero when [`ShardOptions::recovery`] was off
    /// or never triggered).
    pub recovery: RecoveryReport,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Telemetry, when the caller ran with a recording probe (filled by
    /// [`Sharded::run`](crate::Sharded::run), `None` from the raw entry
    /// point).
    pub trace: Option<SolveTrace>,
}

/// What the hub hands back across the team join: the recovery ledger plus
/// the checkpoint segments of dead, never-adopted shards — spliced into the
/// output at quiescence so the write cannot race a zombie's publication.
#[derive(Default)]
struct HubOutcome {
    report: RecoveryReport,
    backfill: Vec<(Range<usize>, Vec<f64>)>,
}

/// Everything the workers share, borrowed for the duration of the team
/// scope.
struct Shared<'a> {
    setup: &'a MgSetup,
    b: &'a [f64],
    opts: &'a ShardOptions,
    map: &'a ShardMap,
    transport: &'a dyn Transport,
    plan: Option<&'a FaultPlan>,
    out: &'a RacyVec,
    stop_flag: &'a AtomicBool,
    faults: &'a Mutex<Vec<FaultRecord>>,
    reductions: &'a Mutex<Vec<Reduction>>,
    shard_epochs: &'a [AtomicU64],
    hub_cycles: &'a AtomicU64,
    hub_out: &'a Mutex<HubOutcome>,
    norm_b: f64,
    clock: &'a dyn Clock,
    /// Clock reading at solve start; [`Shared::now`] reports offsets so
    /// timestamps stay comparable across clock implementations.
    t0: u64,
}

impl Shared<'_> {
    fn now(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.t0)
    }

    fn log_fault<P: Probe + ?Sized>(&self, probe: &P, kind: FaultKind) {
        let t_ns = self.now();
        self.faults.lock().unwrap().push(FaultRecord { t_ns, kind });
        if probe.enabled() {
            probe.fault(t_ns, kind);
        }
    }
}

/// Runs a sharded solve under an explicit transport and scheduler — the
/// deterministic entry point ([`Sharded`](crate::Sharded) wraps it with
/// production defaults). `transport` must connect `opts.n_shards + 1` ranks
/// (rank `S` is the hub).
pub fn solve_sharded_sched<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &ShardOptions,
    transport: &dyn Transport,
    sched: &dyn Sched,
    plan: Option<&FaultPlan>,
    probe: &P,
) -> ShardResult {
    solve_sharded_clocked(setup, b, opts, transport, sched, plan, None, probe)
}

/// [`solve_sharded_sched`] with an explicit [`Clock`] driving the recovery
/// layer's silence deadlines and retransmit backoff. `None` uses a fresh
/// [`OsClock`]; pass a [`VirtualClock`](asyncmg_threads::VirtualClock)
/// together with a `VirtualSched` + `VirtualTransport` for bit-identical
/// replay of full detect → adopt → converge runs.
#[allow(clippy::too_many_arguments)]
pub fn solve_sharded_clocked<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &ShardOptions,
    transport: &dyn Transport,
    sched: &dyn Sched,
    plan: Option<&FaultPlan>,
    clock: Option<&dyn Clock>,
    probe: &P,
) -> ShardResult {
    let n = setup.n();
    let s_count = opts.n_shards;
    assert_eq!(b.len(), n, "rhs length");
    assert!(s_count >= 1, "at least one shard");
    assert!(s_count <= n, "more shards than rows");
    assert_eq!(transport.n_ranks(), s_count + 1, "transport must connect n_shards + 1 ranks");

    // Row layout from the hierarchy's partition cache (level 0).
    let ranges = setup.hierarchy.partitions(s_count)[0].clone();
    let map = ShardMap::new(setup.a(0), ranges);

    let default_clock;
    let clock: &dyn Clock = match clock {
        Some(c) => c,
        None => {
            default_clock = OsClock::new();
            &default_clock
        }
    };

    let out = RacyVec::zeros(n);
    let stop_flag = AtomicBool::new(false);
    let faults = Mutex::new(Vec::new());
    let reductions = Mutex::new(Vec::new());
    let shard_epochs: Vec<AtomicU64> = (0..s_count).map(|_| AtomicU64::new(0)).collect();
    let hub_cycles = AtomicU64::new(0);
    let hub_out = Mutex::new(HubOutcome::default());
    let start = Instant::now();
    let norm_b = vecops::norm2(b);

    let shared = Shared {
        setup,
        b,
        opts,
        map: &map,
        transport,
        plan,
        out: &out,
        stop_flag: &stop_flag,
        faults: &faults,
        reductions: &reductions,
        shard_epochs: &shard_epochs,
        hub_cycles: &hub_cycles,
        hub_out: &hub_out,
        norm_b,
        clock,
        t0: clock.now_ns(),
    };

    let team_sizes = vec![1usize; s_count + 1];
    run_teams_sched(&team_sizes, sched, |ctx| {
        if ctx.team_id < s_count {
            shard_worker(&shared, probe, &ctx, ctx.team_id);
        } else {
            hub_worker(&shared, probe, &ctx);
        }
    });

    // Quiescent now: assemble and measure exactly. `shared` borrows `out`
    // and the fault/reduction logs; moving it out of scope releases them.
    #[allow(clippy::drop_non_drop)]
    drop(shared);
    let mut out = out;
    let HubOutcome { report, backfill } = hub_out.into_inner().unwrap();
    // Dead shards that nobody adopted left their rows unwritten; the hub's
    // last checkpoints are the best surviving values for them.
    for (range, vals) in backfill {
        out.as_mut_slice()[range].copy_from_slice(&vals);
    }
    let x = out.as_mut_slice().to_vec();
    let mut r = vec![0.0; n];
    setup.a(0).residual(b, &x, &mut r);
    let norm = vecops::norm2(&r);
    let relres = if norm_b > 0.0 { norm / norm_b } else { norm };
    let stopped_on_tolerance = stop_flag.load(Ordering::Acquire);
    let faults = faults.into_inner().unwrap();
    let finite = relres.is_finite() && x.iter().all(|v| v.is_finite());
    let hit_tol = stopped_on_tolerance || opts.tolerance.is_some_and(|t| relres < t);
    let outcome = if !finite {
        SolveOutcome::Faulted
    } else if !faults.is_empty() {
        SolveOutcome::Degraded
    } else if hit_tol {
        SolveOutcome::Converged
    } else {
        SolveOutcome::MaxIterations
    };
    ShardResult {
        x,
        relres,
        stopped_on_tolerance,
        outcome,
        faults,
        shard_epochs: shard_epochs.iter().map(|e| e.load(Ordering::Acquire)).collect(),
        hub_cycles: hub_cycles.load(Ordering::Acquire),
        reductions: reductions.into_inner().unwrap(),
        stats: transport.stats(),
        recovery: report,
        elapsed: start.elapsed(),
        trace: None,
    }
}

/// One shard's epoch loop.
fn shard_worker<P: Probe + ?Sized>(cx: &Shared<'_>, probe: &P, team: &TeamCtx<'_>, s: usize) {
    // Recovery rewires the geometry live, so every worker drives its own
    // copy of the map (identical to the shared one while no adoption is
    // applied).
    let mut map = cx.map.clone();
    let mut rs = map.range(s);
    let hub = map.n_shards();
    let a = cx.setup.a(0);
    let smoother = &cx.setup.smoothers[0];
    let mut neighbors = map.neighbors_out(s);
    let n = cx.b.len();
    let rec = cx.opts.recovery;

    // Full-length local iterate: authoritative on own rows, halo-refreshed
    // ghosts elsewhere (never read outside own rows' sparsity).
    let mut x = vec![0.0; n];
    let mut block = vec![0.0; rs.len()];
    let mut r = vec![0.0; n];
    let mut wire = Vec::new();
    let mut corr_seen: u64 = 0;
    let mut epochs_done: u64 = 0;
    // Geometry version: adoptions applied so far. Messages tagged with a
    // different version describe a layout this shard is not at and are
    // silently discarded (not faults — just staleness).
    let mut ver: u32 = 0;
    let mut rel_rx = ReliableReceiver::default();
    // Adoptions that arrived ahead of their turn, keyed by index.
    let mut pending_adopts: BTreeMap<u32, (u32, u32, Vec<f64>)> = BTreeMap::new();
    // A crashed or evicted shard exits *silently*: no `Done`, no published
    // rows — node loss as the hub's failure detector sees it.
    let mut silent = false;

    'epochs: for e in 0..cx.opts.t_max as u64 {
        team.sched_point(SchedPoint::Yield);
        if let Some(plan) = cx.plan {
            let steps = plan.stall_steps(s, e);
            if steps > 0 {
                cx.log_fault(probe, FaultKind::Straggler { worker: s as u32, steps });
                for _ in 0..steps {
                    team.sched_point(SchedPoint::Yield);
                }
            }
            if plan.team_crashed(s, e) {
                cx.log_fault(probe, FaultKind::TeamCrash { team: s as u32 });
                if rec.is_some() {
                    silent = true;
                }
                break 'epochs;
            }
        }

        // Drain the inbox: halo ghosts, coarse corrections, adoptions,
        // stop requests. Reliable wrappers are acked on every delivery and
        // unwrapped exactly once.
        while let Some(wire_msg) = cx.transport.try_recv(s) {
            team.sched_point(SchedPoint::RacyRead);
            let msg = match wire_msg {
                Msg::Reliable { seq, inner } => {
                    cx.transport.send(s, hub, Msg::Ack { from: s as u32, seq });
                    if !rel_rx.accept(seq) {
                        continue; // duplicate delivery: acked, not reapplied
                    }
                    *inner
                }
                m => m,
            };
            match msg {
                Msg::Halo { from, ver: v, vals, .. } => {
                    if v != ver {
                        continue; // stale geometry (or a fenced zombie)
                    }
                    let ok = vals.iter().all(|v| v.is_finite())
                        && map.scatter(from as usize, s, &vals, &mut x);
                    if !ok {
                        cx.log_fault(probe, FaultKind::GuardTripped { grid: from });
                    }
                }
                Msg::Correction { cycle, ver: v, vals } => {
                    if v != ver {
                        continue;
                    }
                    // With recovery armed, a reordered or retransmitted
                    // correction can arrive after a newer one was applied;
                    // correcting backwards would undo converged progress.
                    // (Undefended keeps the pre-recovery behaviour.)
                    if rec.is_some() && cycle < corr_seen {
                        continue;
                    }
                    if vals.len() == rs.len() && vals.iter().all(|v| v.is_finite()) {
                        for (xi, v) in x[rs.clone()].iter_mut().zip(&vals) {
                            *xi += v;
                        }
                        corr_seen = corr_seen.max(cycle + 1);
                    } else {
                        // The malformed segment came from the hub — log the
                        // sender, consistent with the halo guard above.
                        cx.log_fault(probe, FaultKind::GuardTripped { grid: hub as u32 });
                    }
                }
                Msg::Adopt { index, dead, adopter, vals } => {
                    pending_adopts.insert(index, (dead, adopter, vals));
                    // Apply in index order; each applied adoption bumps the
                    // version and may unlock the next buffered one.
                    while let Some((dead, adopter, vals)) = pending_adopts.remove(&ver) {
                        let dead_range = map.range(dead as usize);
                        map.adopt(a, dead as usize, adopter as usize);
                        ver += 1;
                        rs = map.range(s);
                        neighbors = map.neighbors_out(s);
                        if s == adopter as usize {
                            block.resize(rs.len(), 0.0);
                            // Warm-start the adopted rows from the hub's
                            // checkpoint; an empty payload keeps the local
                            // halo-informed values.
                            if vals.len() == dead_range.len() && vals.iter().all(|v| v.is_finite())
                            {
                                x[dead_range].copy_from_slice(&vals);
                            }
                        }
                    }
                }
                Msg::Stop => break 'epochs,
                Msg::Evict => {
                    silent = true;
                    break 'epochs;
                }
                // `NormComplete` is informational to a shard; the remaining
                // variants are hub-bound and never addressed here.
                _ => {}
            }
        }

        // Smooth own rows against the local snapshot.
        for _ in 0..cx.opts.sweeps.max(1) {
            smoother.relax_range(a, cx.b, &mut block, &x, rs.clone());
            x[rs.clone()].copy_from_slice(&block);
        }

        // Own residual segment and its squared norm.
        a.residual_rows(rs.clone(), cx.b, &x, &mut r);
        let sumsq = vecops::sumsq_rows(rs.clone(), &r);

        // Outgoing data — suppressed wholesale by a drop fault (node loss).
        if cx.plan.is_some_and(|p| p.drops_write(s, e)) {
            cx.log_fault(probe, FaultKind::WriteDropped { grid: s as u32 });
        } else {
            let mut corrupt = cx.plan.and_then(|p| p.corruption(s, e));
            for &t in &neighbors {
                map.gather(s, t, &x, &mut wire);
                if let Some(kind) = corrupt.take() {
                    wire[0] = cx.plan.unwrap().corrupt_value(kind, wire[0], s, e);
                    cx.log_fault(probe, FaultKind::WriteCorrupted { grid: s as u32 });
                }
                let vals = wire.clone();
                cx.transport.send(s, t, Msg::Halo { from: s as u32, epoch: e, ver, vals });
                team.sched_point(SchedPoint::RacyWrite);
            }
            let mut seg = r[rs.clone()].to_vec();
            if let Some(kind) = corrupt.take() {
                seg[0] = cx.plan.unwrap().corrupt_value(kind, seg[0], s, e);
                cx.log_fault(probe, FaultKind::WriteCorrupted { grid: s as u32 });
            }
            cx.transport.send(
                s,
                hub,
                Msg::Residual { from: s as u32, epoch: e, ver, corr_seen, vals: seg },
            );
            cx.transport.send(s, hub, Msg::PartialNorm { from: s as u32, epoch: e, ver, sumsq });
            if let Some(rc) = rec {
                if rc.checkpoint_every > 0 && e % rc.checkpoint_every == 0 {
                    let vals = x[rs.clone()].to_vec();
                    let m = Msg::Checkpoint { from: s as u32, epoch: e, ver, vals };
                    cx.transport.send(s, hub, m);
                }
            }
            team.sched_point(SchedPoint::RacyWrite);
        }

        epochs_done = e + 1;
        if probe.enabled() {
            probe.correction(team.global_rank, s, e as usize, cx.now(), sumsq.sqrt());
        }
    }

    if !silent {
        // Terminal control: even a budget-exhausted shard's `Done` reaches
        // the hub so the run always terminates.
        cx.transport.send(s, hub, Msg::Done { from: s as u32 });
        // Publish the owned segment of the solution (disjoint ranges; the
        // join provides the release/acquire edge).
        unsafe { cx.out.slice_mut(rs.clone()) }.copy_from_slice(&x[rs]);
    }
    cx.shard_epochs[s].store(epochs_done, Ordering::Release);
}

/// A shard rank as the hub sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Peer {
    /// Heard from (or expected) recently; participates in gates and
    /// broadcasts.
    Live,
    /// Sent `Done` — a clean exit, rows published.
    Finished,
    /// Declared dead by the failure detector — rows adopted or frozen,
    /// every later message from it discarded.
    Dead,
}

/// The hub: residual assembly, coarse cycles, the norm reduction, failure
/// detection, row adoption, the reliable control plane, and termination.
fn hub_worker<P: Probe + ?Sized>(cx: &Shared<'_>, probe: &P, team: &TeamCtx<'_>) {
    let s_count = cx.map.n_shards();
    let hub = s_count;
    let n = cx.b.len();
    let a = cx.setup.a(0);
    let has_coarse = cx.setup.n_levels() > 1;
    let tol = cx.opts.tolerance;
    let rec = cx.opts.recovery;

    let mut map = cx.map.clone();
    let mut r_asm = vec![0.0; n];
    let mut c = vec![0.0; n];
    let mut ws = Workspace::new(cx.setup);
    let mut have: Vec<Option<u64>> = vec![None; s_count];
    let mut used: Vec<Option<u64>> = vec![None; s_count];
    let mut acks: Vec<u64> = vec![0; s_count];
    let mut peer = vec![Peer::Live; s_count];
    let mut terminated = 0usize;
    let mut reducer = NormReducer::new(s_count, cx.norm_b);
    let mut cycles: u64 = 0;
    let mut stop_sent = false;

    // Recovery state. Geometry version = adoptions applied; data messages
    // tagged with any other version are stale and discarded.
    let mut hub_ver: u32 = 0;
    let mut report = RecoveryReport::default();
    let start_ns = cx.now();
    let mut last_ns: Vec<u64> = vec![start_ns; s_count];
    // Fabric-event clock: every message the hub processes ticks it once. A
    // shard's progress silence is measured against this clock — "the hub
    // heard this much total traffic with nothing from s" — which stays
    // deterministic under `VirtualSched` and, unlike a cross-shard epoch
    // gap, does not evict healthy shards that legitimately run slower
    // (interior shards drain about twice the halo traffic of edge shards).
    let mut events: u64 = 0;
    let mut last_event: Vec<u64> = vec![0; s_count];
    // One epoch of a live shard's fabric traffic is ~4 messages; a payload
    // unacked past a full epoch of everyone's traffic is worth resending
    // even if the clock never advanced (busy drains freeze a VirtualClock).
    let rto_ev = 4 * s_count as u64;
    let mut rel_tx: Vec<ReliableSender> = match &rec {
        Some(r) => (0..s_count).map(|_| ReliableSender::new(r, rto_ev)).collect(),
        None => Vec::new(),
    };
    // Freshest accepted checkpoint values per row, and per shard the epoch
    // of its last accepted checkpoint.
    let mut ckpt = vec![0.0; n];
    let mut ckpt_epoch: Vec<Option<u64>> = vec![None; s_count];

    while terminated < s_count {
        team.sched_point(SchedPoint::Yield);
        let mut received_any = false;
        // With recovery armed the drain is burst-bounded: a fabric that
        // never pauses would otherwise starve the failure detector (and the
        // correction path) for the whole solve. Undefended keeps the
        // unbounded drain, bit-identical to the pre-recovery model.
        let mut burst = if rec.is_some() { 8 * s_count + 16 } else { usize::MAX };
        while burst > 0 {
            let Some(msg) = cx.transport.try_recv(hub) else { break };
            burst -= 1;
            received_any = true;
            team.sched_point(SchedPoint::RacyRead);
            if rec.is_some() {
                // Liveness bookkeeping: any message from a live shard —
                // even one tagged with a stale geometry version — proves
                // the shard is running.
                events += 1;
                let heard = match &msg {
                    Msg::Residual { from, .. }
                    | Msg::PartialNorm { from, .. }
                    | Msg::Checkpoint { from, .. }
                    | Msg::Ack { from, .. }
                    | Msg::Done { from } => Some(*from as usize),
                    _ => None,
                };
                if let Some(f) = heard {
                    if peer[f] == Peer::Dead {
                        continue; // fenced: a zombie's messages are void
                    }
                    last_ns[f] = cx.now();
                    last_event[f] = events;
                }
            }
            match msg {
                Msg::Residual { from, epoch, ver, corr_seen, vals } => {
                    if ver != hub_ver {
                        continue; // stale geometry
                    }
                    let f = from as usize;
                    let rs = map.range(f);
                    if vals.len() == rs.len() && vals.iter().all(|v| v.is_finite()) {
                        // Reordering can deliver an older segment after a
                        // newer one; keep only the freshest.
                        if have[f].is_none_or(|h| epoch > h) {
                            r_asm[rs].copy_from_slice(&vals);
                            have[f] = Some(epoch);
                        }
                        acks[f] = acks[f].max(corr_seen);
                    } else {
                        cx.log_fault(probe, FaultKind::GuardTripped { grid: from });
                    }
                }
                // A partial norm only covers the rows its sender owned
                // under `ver`'s geometry; mixing coverage would publish a
                // wrong global norm.
                Msg::PartialNorm { epoch, ver, sumsq, .. }
                    if sumsq.is_finite() && ver == hub_ver =>
                {
                    reducer.offer(epoch, sumsq);
                }
                Msg::Checkpoint { from, epoch, ver, vals } => {
                    let f = from as usize;
                    if ver == hub_ver && peer[f] == Peer::Live {
                        let rs = map.range(f);
                        if vals.len() == rs.len()
                            && vals.iter().all(|v| v.is_finite())
                            && ckpt_epoch[f].is_none_or(|p| epoch > p)
                        {
                            ckpt[rs].copy_from_slice(&vals);
                            ckpt_epoch[f] = Some(epoch);
                            report.checkpoints += 1;
                        }
                    }
                }
                Msg::Ack { from, seq } => {
                    let f = from as usize;
                    if rec.is_some() && peer[f] == Peer::Live {
                        rel_tx[f].on_ack(seq);
                        report.acks += 1;
                    }
                }
                Msg::Done { from } => {
                    let f = from as usize;
                    if peer[f] == Peer::Live {
                        peer[f] = Peer::Finished;
                        terminated += 1;
                        if rec.is_some() {
                            rel_tx[f].abandon();
                        }
                    }
                }
                // Halo/Correction/NormComplete/Stop are never hub-bound;
                // non-finite partial norms are discarded.
                _ => {}
            }
        }

        // Publish every newly completed reduction (strictly increasing
        // epochs), broadcast it, and stop on tolerance.
        while let Some(red) = reducer.try_complete() {
            cx.reductions.lock().unwrap().push(red);
            if probe.enabled() {
                probe.residual_sample(cx.now(), red.relres);
            }
            for (t, _) in peer.iter().enumerate().filter(|(_, &p)| p == Peer::Live) {
                let m = Msg::NormComplete { epoch: red.epoch, relres: red.relres };
                cx.transport.send(hub, t, m);
            }
            if !stop_sent && tol.is_some_and(|t| red.relres < t) {
                cx.stop_flag.store(true, Ordering::Release);
                stop_sent = true;
                for (t, _) in peer.iter().enumerate().filter(|(_, &p)| p == Peer::Live) {
                    let now_ns = cx.now();
                    let m = match rel_tx.get_mut(t) {
                        Some(tx) => tx.send(Msg::Stop, now_ns, events),
                        None => Msg::Stop,
                    };
                    cx.transport.send(hub, t, m);
                }
            }
        }

        // The recovery layer: idle pacing, retransmission, the failure
        // detector, and row adoption.
        if let Some(r) = &rec {
            if !received_any {
                // An empty drain advances the clock — this is what walks a
                // `VirtualClock` toward the silence deadline and bounds the
                // everything-crashed case in real time.
                cx.clock.sleep(r.poll);
            }
            let now_ns = cx.now();
            for t in (0..s_count).filter(|&t| peer[t] == Peer::Live) {
                for m in rel_tx[t].due(now_ns, events) {
                    report.retransmits += 1;
                    cx.transport.send(hub, t, m);
                }
            }

            // The failure detector. Progress-based silence: the fabric
            // delivered `silence_epochs` epochs' worth of traffic (a live
            // shard sends the hub ~4 messages per epoch) with nothing from
            // the silent shard. Disabled once `Stop` went out — traffic
            // stops then, and a slow finisher is not a death. Clock-based
            // silence and retransmit exhaustion back it up.
            let silent_events = r.silence_epochs.max(1).saturating_mul(4 * s_count as u64);
            let silence_ns = r.silence.as_nanos() as u64;
            for s in 0..s_count {
                if peer[s] != Peer::Live {
                    continue;
                }
                let gap = !stop_sent && events.saturating_sub(last_event[s]) >= silent_events;
                let quiet = now_ns.saturating_sub(last_ns[s]) >= silence_ns;
                let exhausted = rel_tx[s].exhausted(now_ns, events);
                if !(gap || quiet || exhausted) {
                    continue;
                }

                // Declare the death.
                peer[s] = Peer::Dead;
                terminated += 1;
                report.dead_shards.push(s as u32);
                cx.log_fault(probe, FaultKind::ShardDeclaredDead { shard: s as u32 });
                rel_tx[s].abandon();
                have[s] = None;
                // Fence a potential false positive: an evicted zombie
                // exits silently instead of publishing adopted-away rows.
                cx.transport.send(hub, s, Msg::Evict);
                report.evictions += 1;
                // Survivor coverage changes: expect one fewer part and
                // discard mixed-coverage pending epochs.
                reducer.retire_part();
                reducer.clear_pending();

                if !r.adopt || stop_sent {
                    continue;
                }
                // Adopt the rows to the nearest live shard whose path to
                // the dead range crosses only already-emptied ranges.
                let adopter = (1..s_count)
                    .flat_map(|d| [s.checked_sub(d), s.checked_add(d).filter(|&t| t < s_count)])
                    .flatten()
                    .find(|&t| {
                        let (lo, hi) = if t < s { (t, s) } else { (s, t) };
                        peer[t] == Peer::Live && (lo + 1..hi).all(|k| map.range(k).is_empty())
                    });
                let Some(adopter) = adopter else {
                    continue;
                };
                let dead_range = map.range(s);
                let seed_vals: Vec<f64> = if ckpt_epoch[s].is_some() {
                    ckpt[dead_range.clone()].to_vec()
                } else {
                    Vec::new()
                };
                map.adopt(a, s, adopter);
                let index = hub_ver;
                hub_ver += 1;
                report.adoptions.push((s as u32, adopter as u32));
                cx.log_fault(probe, FaultKind::RowsAdopted { from: s as u32, to: adopter as u32 });
                for t in (0..s_count).filter(|&t| peer[t] == Peer::Live) {
                    let vals = if t == adopter { seed_vals.clone() } else { Vec::new() };
                    let payload =
                        Msg::Adopt { index, dead: s as u32, adopter: adopter as u32, vals };
                    let wire = rel_tx[t].send(payload, now_ns, events);
                    cx.transport.send(hub, t, wire);
                }
            }
        }

        if stop_sent || !has_coarse || peer.iter().all(|&p| p != Peer::Live) {
            continue;
        }
        // Correct only from a caught-up snapshot: a burst-capped drain that
        // did not run dry left newer residuals queued, and a correction
        // computed from the stale assembly would overshoot what the shards
        // have since smoothed away. (Undefended drains are unbounded, so
        // `burst` is always positive there and this never skips.)
        if burst == 0 {
            continue;
        }

        // Correct only from residuals that fully reflect the previous
        // correction — *including through halos*. A residual sent one epoch
        // after a correction still carries pre-correction ghost values in
        // its cross-shard terms, and correcting the same smooth error twice
        // is exactly the overshoot that destabilises a hot hub. Two epochs
        // suffice: one for every neighbour to apply the correction and send
        // halos, one to smooth against the corrected ghosts.
        let fresh = (0..s_count).all(|t| {
            peer[t] != Peer::Live
                || match (have[t], used[t]) {
                    (Some(h), Some(u)) => h >= u + 2,
                    (Some(_), None) => true,
                    (None, _) => false,
                }
        });
        if !fresh {
            continue;
        }
        // …and the previous correction was seen by everyone (else wait two
        // more epochs — after that, assume the correction was lost in a
        // lossy fabric and move on rather than stall forever).
        let acked = (0..s_count).all(|t| peer[t] != Peer::Live || acks[t] >= cycles);
        let patient = (0..s_count).all(|t| {
            peer[t] != Peer::Live
                || match (have[t], used[t]) {
                    (Some(h), Some(u)) => h >= u + 4,
                    (Some(h), None) => h >= 1,
                    (None, _) => false,
                }
        });
        if !(acked || patient) {
            continue;
        }

        if coarse_correction(cx.setup, &r_asm, &mut c, &mut ws) {
            let now_ns = if rec.is_some() { cx.now() } else { 0 };
            for (t, _) in peer.iter().enumerate().filter(|(_, &p)| p == Peer::Live) {
                let rs = map.range(t);
                let vals: Vec<f64> = c[rs].iter().map(|&v| v * cx.opts.damping).collect();
                let payload = Msg::Correction { cycle: cycles, ver: hub_ver, vals };
                let m = match rel_tx.get_mut(t) {
                    Some(tx) => {
                        // A fresher correction supersedes any unacked older
                        // one — retransmitting a stale correction onto a
                        // nearly-converged iterate would undo progress.
                        tx.supersede(|m| matches!(m, Msg::Correction { .. }));
                        tx.send(payload, now_ns, events)
                    }
                    None => payload,
                };
                cx.transport.send(hub, t, m);
            }
            team.sched_point(SchedPoint::RacyWrite);
            used.copy_from_slice(&have);
            cycles += 1;
            if probe.enabled() {
                probe.correction(
                    team.global_rank,
                    s_count,
                    (cycles - 1) as usize,
                    cx.now(),
                    f64::NAN,
                );
            }
        }
    }
    cx.hub_cycles.store(cycles, Ordering::Release);

    if rec.is_some() {
        // Hand the recovery ledger — plus checkpoint segments for dead,
        // never-adopted rows — across the join. The backfill happens at
        // quiescence so it cannot race a zombie's publication.
        let mut out = cx.hub_out.lock().unwrap();
        for &s in &report.dead_shards {
            let s = s as usize;
            let range = map.range(s);
            if !range.is_empty() && ckpt_epoch[s].is_some() {
                out.backfill.push((range.clone(), ckpt[range].to_vec()));
            }
        }
        out.report = report;
    }
}
