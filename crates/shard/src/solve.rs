//! The sharded solve: shard workers, the hub, and the result type.
//!
//! Execution model (see `docs/sharding.md`):
//!
//! * `S` *shard workers*, ranks `0..S`, each own one contiguous row range
//!   of the fine grid (from `Hierarchy::partitions`). Per epoch a shard
//!   drains its inbox (halo values, coarse corrections, stop requests),
//!   smooths its own rows against its local snapshot, computes its residual
//!   segment, and fires halo values at its neighbours plus a residual
//!   segment and a partial norm at the hub. Nothing ever blocks: missing
//!   messages just mean this epoch smooths against slightly stale ghosts —
//!   the asynchronous model of the paper, recast over messages.
//! * One *hub*, rank `S`, assembles residual segments, runs the coarse
//!   half of the multiplicative cycle (`coarse_correction`) when every live
//!   shard has contributed a residual fresher than the last correction —
//!   and has acknowledged that correction (or run two epochs past it, the
//!   lost-correction valve) so corrections are never compounded from stale
//!   data — and broadcasts per-shard correction segments. It also runs the
//!   never-blocking norm reduction ([`NormReducer`]) and broadcasts
//!   `NormComplete`/`Stop`.
//!
//! Faults compose at the send boundary: a `FaultPlan`'s stragglers stall a
//! shard's epoch loop, crashes end it early (the shard still emits its
//! `Done`, standing in for a failure detector), corruption garbles the
//! first outgoing data value of the epoch (receiver-side finiteness guards
//! reject the message and log `GuardTripped`), and drop faults suppress the
//! epoch's outgoing data wholesale — identically over any transport.

use crate::halo::ShardMap;
use crate::msg::Msg;
use crate::reduce::{NormReducer, Reduction};
use crate::transport::{Transport, TransportStats};
use asyncmg_core::{coarse_correction, MgSetup, SolveOutcome, Workspace};
use asyncmg_sparse::vecops;
use asyncmg_telemetry::{FaultKind, FaultRecord, Probe, SolveTrace};
use asyncmg_threads::{run_teams_sched, FaultPlan, RacyVec, Sched, SchedPoint, TeamCtx};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of a sharded solve.
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Number of shard workers (the hub adds one more rank).
    pub n_shards: usize,
    /// Epoch budget per shard.
    pub t_max: usize,
    /// Stop once a completed reduction falls below this relative residual.
    pub tolerance: Option<f64>,
    /// Smoothing sweeps per epoch.
    pub sweeps: usize,
    /// Damping applied to coarse corrections before they are sent.
    pub damping: f64,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions { n_shards: 2, t_max: 60, tolerance: None, sweeps: 1, damping: 1.0 }
    }
}

/// The outcome of a sharded solve.
#[derive(Clone, Debug)]
pub struct ShardResult {
    /// The assembled approximation.
    pub x: Vec<f64>,
    /// Exact relative residual, recomputed after the run.
    pub relres: f64,
    /// Whether the hub's reduction observed the tolerance met and broadcast
    /// `Stop` (release/acquire: schedule-independent).
    pub stopped_on_tolerance: bool,
    /// Structured outcome (faults degrade, non-finite results fault).
    pub outcome: SolveOutcome,
    /// Injected faults and guard trips, in occurrence order.
    pub faults: Vec<FaultRecord>,
    /// Epochs each shard completed.
    pub shard_epochs: Vec<u64>,
    /// Coarse-correction cycles the hub performed.
    pub hub_cycles: u64,
    /// Completed norm reductions, in publication order (strictly
    /// increasing epochs).
    pub reductions: Vec<Reduction>,
    /// Transport counter snapshot after the run (quiescent, so
    /// [`TransportStats::conserved`] must hold).
    pub stats: TransportStats,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Telemetry, when the caller ran with a recording probe (filled by
    /// [`Sharded::run`](crate::Sharded::run), `None` from the raw entry
    /// point).
    pub trace: Option<SolveTrace>,
}

/// Everything the workers share, borrowed for the duration of the team
/// scope.
struct Shared<'a> {
    setup: &'a MgSetup,
    b: &'a [f64],
    opts: &'a ShardOptions,
    map: &'a ShardMap,
    transport: &'a dyn Transport,
    plan: Option<&'a FaultPlan>,
    out: &'a RacyVec,
    stop_flag: &'a AtomicBool,
    faults: &'a Mutex<Vec<FaultRecord>>,
    reductions: &'a Mutex<Vec<Reduction>>,
    shard_epochs: &'a [AtomicU64],
    hub_cycles: &'a AtomicU64,
    norm_b: f64,
    epoch_clock: Instant,
}

impl Shared<'_> {
    fn now(&self) -> u64 {
        self.epoch_clock.elapsed().as_nanos() as u64
    }

    fn log_fault<P: Probe + ?Sized>(&self, probe: &P, kind: FaultKind) {
        let t_ns = self.now();
        self.faults.lock().unwrap().push(FaultRecord { t_ns, kind });
        if probe.enabled() {
            probe.fault(t_ns, kind);
        }
    }
}

/// Runs a sharded solve under an explicit transport and scheduler — the
/// deterministic entry point ([`Sharded`](crate::Sharded) wraps it with
/// production defaults). `transport` must connect `opts.n_shards + 1` ranks
/// (rank `S` is the hub).
pub fn solve_sharded_sched<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &ShardOptions,
    transport: &dyn Transport,
    sched: &dyn Sched,
    plan: Option<&FaultPlan>,
    probe: &P,
) -> ShardResult {
    let n = setup.n();
    let s_count = opts.n_shards;
    assert_eq!(b.len(), n, "rhs length");
    assert!(s_count >= 1, "at least one shard");
    assert!(s_count <= n, "more shards than rows");
    assert_eq!(transport.n_ranks(), s_count + 1, "transport must connect n_shards + 1 ranks");

    // Row layout from the hierarchy's partition cache (level 0).
    let ranges = setup.hierarchy.partitions(s_count)[0].clone();
    let map = ShardMap::new(setup.a(0), ranges);

    let out = RacyVec::zeros(n);
    let stop_flag = AtomicBool::new(false);
    let faults = Mutex::new(Vec::new());
    let reductions = Mutex::new(Vec::new());
    let shard_epochs: Vec<AtomicU64> = (0..s_count).map(|_| AtomicU64::new(0)).collect();
    let hub_cycles = AtomicU64::new(0);
    let start = Instant::now();
    let norm_b = vecops::norm2(b);

    let shared = Shared {
        setup,
        b,
        opts,
        map: &map,
        transport,
        plan,
        out: &out,
        stop_flag: &stop_flag,
        faults: &faults,
        reductions: &reductions,
        shard_epochs: &shard_epochs,
        hub_cycles: &hub_cycles,
        norm_b,
        epoch_clock: start,
    };

    let team_sizes = vec![1usize; s_count + 1];
    run_teams_sched(&team_sizes, sched, |ctx| {
        if ctx.team_id < s_count {
            shard_worker(&shared, probe, &ctx, ctx.team_id);
        } else {
            hub_worker(&shared, probe, &ctx);
        }
    });

    // Quiescent now: assemble and measure exactly. `shared` borrows `out`
    // and the fault/reduction logs; moving it out of scope releases them.
    #[allow(clippy::drop_non_drop)]
    drop(shared);
    let mut out = out;
    let x = out.as_mut_slice().to_vec();
    let mut r = vec![0.0; n];
    setup.a(0).residual(b, &x, &mut r);
    let norm = vecops::norm2(&r);
    let relres = if norm_b > 0.0 { norm / norm_b } else { norm };
    let stopped_on_tolerance = stop_flag.load(Ordering::Acquire);
    let faults = faults.into_inner().unwrap();
    let finite = relres.is_finite() && x.iter().all(|v| v.is_finite());
    let hit_tol = stopped_on_tolerance || opts.tolerance.is_some_and(|t| relres < t);
    let outcome = if !finite {
        SolveOutcome::Faulted
    } else if !faults.is_empty() {
        SolveOutcome::Degraded
    } else if hit_tol {
        SolveOutcome::Converged
    } else {
        SolveOutcome::MaxIterations
    };
    ShardResult {
        x,
        relres,
        stopped_on_tolerance,
        outcome,
        faults,
        shard_epochs: shard_epochs.iter().map(|e| e.load(Ordering::Acquire)).collect(),
        hub_cycles: hub_cycles.load(Ordering::Acquire),
        reductions: reductions.into_inner().unwrap(),
        stats: transport.stats(),
        elapsed: start.elapsed(),
        trace: None,
    }
}

/// One shard's epoch loop.
fn shard_worker<P: Probe + ?Sized>(cx: &Shared<'_>, probe: &P, team: &TeamCtx<'_>, s: usize) {
    let rs = cx.map.range(s);
    let hub = cx.map.n_shards();
    let a = cx.setup.a(0);
    let smoother = &cx.setup.smoothers[0];
    let neighbors = cx.map.neighbors_out(s);
    let n = cx.b.len();

    // Full-length local iterate: authoritative on own rows, halo-refreshed
    // ghosts elsewhere (never read outside own rows' sparsity).
    let mut x = vec![0.0; n];
    let mut block = vec![0.0; rs.len()];
    let mut r = vec![0.0; n];
    let mut wire = Vec::new();
    let mut corr_seen: u64 = 0;
    let mut epochs_done: u64 = 0;

    'epochs: for e in 0..cx.opts.t_max as u64 {
        team.sched_point(SchedPoint::Yield);
        if let Some(plan) = cx.plan {
            let steps = plan.stall_steps(s, e);
            if steps > 0 {
                cx.log_fault(probe, FaultKind::Straggler { worker: s as u32, steps });
                for _ in 0..steps {
                    team.sched_point(SchedPoint::Yield);
                }
            }
            if plan.team_crashed(s, e) {
                cx.log_fault(probe, FaultKind::TeamCrash { team: s as u32 });
                break 'epochs;
            }
        }

        // Drain the inbox: halo ghosts, coarse corrections, stop requests.
        while let Some(msg) = cx.transport.try_recv(s) {
            team.sched_point(SchedPoint::RacyRead);
            match msg {
                Msg::Halo { from, vals, .. } => {
                    let ok = vals.iter().all(|v| v.is_finite())
                        && cx.map.scatter(from as usize, s, &vals, &mut x);
                    if !ok {
                        cx.log_fault(probe, FaultKind::GuardTripped { grid: from });
                    }
                }
                Msg::Correction { cycle, vals } => {
                    if vals.len() == rs.len() && vals.iter().all(|v| v.is_finite()) {
                        for (xi, v) in x[rs.clone()].iter_mut().zip(&vals) {
                            *xi += v;
                        }
                        corr_seen = corr_seen.max(cycle + 1);
                    } else {
                        cx.log_fault(probe, FaultKind::GuardTripped { grid: s as u32 });
                    }
                }
                Msg::Stop => break 'epochs,
                // `NormComplete` is informational to a shard; the remaining
                // variants are hub-bound and never addressed here.
                _ => {}
            }
        }

        // Smooth own rows against the local snapshot.
        for _ in 0..cx.opts.sweeps.max(1) {
            smoother.relax_range(a, cx.b, &mut block, &x, rs.clone());
            x[rs.clone()].copy_from_slice(&block);
        }

        // Own residual segment and its squared norm.
        a.residual_rows(rs.clone(), cx.b, &x, &mut r);
        let sumsq = vecops::sumsq_rows(rs.clone(), &r);

        // Outgoing data — suppressed wholesale by a drop fault (node loss).
        if cx.plan.is_some_and(|p| p.drops_write(s, e)) {
            cx.log_fault(probe, FaultKind::WriteDropped { grid: s as u32 });
        } else {
            let mut corrupt = cx.plan.and_then(|p| p.corruption(s, e));
            for &t in &neighbors {
                cx.map.gather(s, t, &x, &mut wire);
                if let Some(kind) = corrupt.take() {
                    wire[0] = cx.plan.unwrap().corrupt_value(kind, wire[0], s, e);
                    cx.log_fault(probe, FaultKind::WriteCorrupted { grid: s as u32 });
                }
                let vals = wire.clone();
                cx.transport.send(s, t, Msg::Halo { from: s as u32, epoch: e, vals });
                team.sched_point(SchedPoint::RacyWrite);
            }
            let mut seg = r[rs.clone()].to_vec();
            if let Some(kind) = corrupt.take() {
                seg[0] = cx.plan.unwrap().corrupt_value(kind, seg[0], s, e);
                cx.log_fault(probe, FaultKind::WriteCorrupted { grid: s as u32 });
            }
            cx.transport.send(
                s,
                hub,
                Msg::Residual { from: s as u32, epoch: e, corr_seen, vals: seg },
            );
            cx.transport.send(s, hub, Msg::PartialNorm { from: s as u32, epoch: e, sumsq });
            team.sched_point(SchedPoint::RacyWrite);
        }

        epochs_done = e + 1;
        if probe.enabled() {
            probe.correction(team.global_rank, s, e as usize, cx.now(), sumsq.sqrt());
        }
    }

    // Terminal control: the shard's own failure detector stand-in — even a
    // crashed shard's `Done` reaches the hub so the run always terminates.
    cx.transport.send(s, hub, Msg::Done { from: s as u32 });
    // Publish the owned segment of the solution (disjoint ranges; the join
    // provides the release/acquire edge).
    unsafe { cx.out.slice_mut(rs.clone()) }.copy_from_slice(&x[rs]);
    cx.shard_epochs[s].store(epochs_done, Ordering::Release);
}

/// The hub: residual assembly, coarse cycles, the norm reduction, and
/// termination.
fn hub_worker<P: Probe + ?Sized>(cx: &Shared<'_>, probe: &P, team: &TeamCtx<'_>) {
    let s_count = cx.map.n_shards();
    let hub = s_count;
    let n = cx.b.len();
    let has_coarse = cx.setup.n_levels() > 1;
    let tol = cx.opts.tolerance;

    let mut r_asm = vec![0.0; n];
    let mut c = vec![0.0; n];
    let mut ws = Workspace::new(cx.setup);
    let mut have: Vec<Option<u64>> = vec![None; s_count];
    let mut used: Vec<Option<u64>> = vec![None; s_count];
    let mut acks: Vec<u64> = vec![0; s_count];
    let mut live = vec![true; s_count];
    let mut done = 0usize;
    let mut reducer = NormReducer::new(s_count, cx.norm_b);
    let mut cycles: u64 = 0;
    let mut stop_sent = false;

    while done < s_count {
        team.sched_point(SchedPoint::Yield);
        while let Some(msg) = cx.transport.try_recv(hub) {
            team.sched_point(SchedPoint::RacyRead);
            match msg {
                Msg::Residual { from, epoch, corr_seen, vals } => {
                    let f = from as usize;
                    let rs = cx.map.range(f);
                    if vals.len() == rs.len() && vals.iter().all(|v| v.is_finite()) {
                        // Reordering can deliver an older segment after a
                        // newer one; keep only the freshest.
                        if have[f].is_none_or(|h| epoch > h) {
                            r_asm[rs].copy_from_slice(&vals);
                            have[f] = Some(epoch);
                        }
                        acks[f] = acks[f].max(corr_seen);
                    } else {
                        cx.log_fault(probe, FaultKind::GuardTripped { grid: from });
                    }
                }
                Msg::PartialNorm { epoch, sumsq, .. } if sumsq.is_finite() => {
                    reducer.offer(epoch, sumsq);
                }
                Msg::Done { from } => {
                    let f = from as usize;
                    if live[f] {
                        live[f] = false;
                        done += 1;
                    }
                }
                // Halo/Correction/NormComplete/Stop are never hub-bound;
                // non-finite partial norms are discarded.
                _ => {}
            }
        }

        // Publish every newly completed reduction (strictly increasing
        // epochs), broadcast it, and stop on tolerance.
        while let Some(red) = reducer.try_complete() {
            cx.reductions.lock().unwrap().push(red);
            if probe.enabled() {
                probe.residual_sample(cx.now(), red.relres);
            }
            for (t, _) in live.iter().enumerate().filter(|(_, &l)| l) {
                let m = Msg::NormComplete { epoch: red.epoch, relres: red.relres };
                cx.transport.send(hub, t, m);
            }
            if !stop_sent && tol.is_some_and(|t| red.relres < t) {
                cx.stop_flag.store(true, Ordering::Release);
                stop_sent = true;
                for (t, _) in live.iter().enumerate().filter(|(_, &l)| l) {
                    cx.transport.send(hub, t, Msg::Stop);
                }
            }
        }
        if stop_sent || !has_coarse || live.iter().all(|&l| !l) {
            continue;
        }

        // Correct only from residuals that fully reflect the previous
        // correction — *including through halos*. A residual sent one epoch
        // after a correction still carries pre-correction ghost values in
        // its cross-shard terms, and correcting the same smooth error twice
        // is exactly the overshoot that destabilises a hot hub. Two epochs
        // suffice: one for every neighbour to apply the correction and send
        // halos, one to smooth against the corrected ghosts.
        let fresh = (0..s_count).all(|t| {
            !live[t]
                || match (have[t], used[t]) {
                    (Some(h), Some(u)) => h >= u + 2,
                    (Some(_), None) => true,
                    (None, _) => false,
                }
        });
        if !fresh {
            continue;
        }
        // …and the previous correction was seen by everyone (else wait two
        // more epochs — after that, assume the correction was lost in a
        // lossy fabric and move on rather than stall forever).
        let acked = (0..s_count).all(|t| !live[t] || acks[t] >= cycles);
        let patient = (0..s_count).all(|t| {
            !live[t]
                || match (have[t], used[t]) {
                    (Some(h), Some(u)) => h >= u + 4,
                    (Some(h), None) => h >= 1,
                    (None, _) => false,
                }
        });
        if !(acked || patient) {
            continue;
        }

        if coarse_correction(cx.setup, &r_asm, &mut c, &mut ws) {
            for (t, _) in live.iter().enumerate().filter(|(_, &l)| l) {
                let rs = cx.map.range(t);
                let vals: Vec<f64> = c[rs].iter().map(|&v| v * cx.opts.damping).collect();
                cx.transport.send(hub, t, Msg::Correction { cycle: cycles, vals });
            }
            team.sched_point(SchedPoint::RacyWrite);
            used.copy_from_slice(&have);
            cycles += 1;
            if probe.enabled() {
                probe.correction(
                    team.global_rank,
                    s_count,
                    (cycles - 1) as usize,
                    cx.now(),
                    f64::NAN,
                );
            }
        }
    }
    cx.hub_cycles.store(cycles, Ordering::Release);
}
