//! The message vocabulary of the sharded execution model.
//!
//! Every byte that crosses a shard boundary is one of these variants. Data
//! messages (halo values, residual segments, partial norms, corrections,
//! completed norms) may be delayed, reordered or dropped by a lossy
//! [`Transport`](crate::Transport); the two *control* messages — [`Msg::Stop`]
//! and [`Msg::Done`] — are the liveness backbone and are never dropped
//! (a real network backend would carry them over a reliable channel).

/// One message between shard ranks. Ranks `0..S` are shard workers; rank
/// `S` is the hub (coarse solver + norm reducer).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Boundary values a neighbour needs: `vals[i]` is the sender's iterate
    /// at the `i`-th ghost index of the `(from, to)` pair's
    /// [`ShardMap::ghost_indices`](crate::ShardMap::ghost_indices) list.
    Halo {
        /// Sending shard.
        from: u32,
        /// Sender's epoch when the values were gathered.
        epoch: u64,
        /// Iterate values in ghost-index order.
        vals: Vec<f64>,
    },
    /// A shard's residual segment for the hub's assembled fine-grid
    /// residual.
    Residual {
        /// Sending shard.
        from: u32,
        /// Sender's epoch when the segment was computed.
        epoch: u64,
        /// Number of hub corrections the sender had applied by then (the
        /// hub's overshoot guard).
        corr_seen: u64,
        /// The shard's own rows of `b − A x`.
        vals: Vec<f64>,
    },
    /// One shard's contribution to the epoch's residual norm (the
    /// never-blocking reduction: the hub combines `S` of these per epoch).
    PartialNorm {
        /// Sending shard.
        from: u32,
        /// Epoch the partial sum belongs to.
        epoch: u64,
        /// `Σ r_i²` over the shard's own rows.
        sumsq: f64,
    },
    /// Coarse-grid correction restricted to the destination shard's rows
    /// (hub → shard).
    Correction {
        /// Hub cycle that produced the correction.
        cycle: u64,
        /// Correction values for the destination's own rows, damping
        /// already applied.
        vals: Vec<f64>,
    },
    /// A reduction completed: the global relative residual of `epoch` is
    /// known (hub → shards, the AMReX-style `comm_complete` broadcast).
    NormComplete {
        /// Epoch the reduction covers. Strictly increasing per receiver.
        epoch: u64,
        /// Published global relative residual.
        relres: f64,
    },
    /// Tolerance reached — finish up (hub → shards). Control: never
    /// dropped.
    Stop,
    /// A shard finished (budget, stop request, or injected crash). Control:
    /// never dropped.
    Done {
        /// The finished shard.
        from: u32,
    },
}

impl Msg {
    /// `true` for the control messages a transport must deliver reliably.
    pub fn is_control(&self) -> bool {
        matches!(self, Msg::Stop | Msg::Done { .. })
    }

    /// Stable lowercase kind name (diagnostics and fingerprints).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::Halo { .. } => "halo",
            Msg::Residual { .. } => "residual",
            Msg::PartialNorm { .. } => "partial_norm",
            Msg::Correction { .. } => "correction",
            Msg::NormComplete { .. } => "norm_complete",
            Msg::Stop => "stop",
            Msg::Done { .. } => "done",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert!(Msg::Stop.is_control());
        assert!(Msg::Done { from: 3 }.is_control());
        assert!(!Msg::Halo { from: 0, epoch: 0, vals: vec![] }.is_control());
        assert!(!Msg::NormComplete { epoch: 0, relres: 1.0 }.is_control());
        assert_eq!(Msg::Stop.kind_name(), "stop");
        assert_eq!(Msg::PartialNorm { from: 0, epoch: 1, sumsq: 2.0 }.kind_name(), "partial_norm");
    }
}
