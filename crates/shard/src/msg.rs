//! The message vocabulary of the sharded execution model.
//!
//! Every byte that crosses a shard boundary is one of these variants. Data
//! messages (halo values, residual segments, partial norms, corrections,
//! completed norms, checkpoints, acks and reliable-wrapped payloads) may be
//! delayed, reordered or dropped by a lossy [`Transport`](crate::Transport);
//! the *control* messages — [`Msg::Stop`], [`Msg::Done`] and [`Msg::Evict`] —
//! are the liveness backbone and are never dropped (a real network backend
//! would carry them over a reliable channel).
//!
//! Recovery (see `docs/sharding.md`) adds a geometry version `ver` to every
//! row-addressed data message: each applied [`Msg::Adopt`] bumps the
//! version, and receivers silently discard messages tagged with a stale
//! version — they describe a row layout that no longer exists. With
//! recovery off the version is always zero and the checks never fire.
//! [`Msg::Reliable`] wraps hub control-plane payloads (corrections,
//! adoptions, stop) with a sequence number that the receiver acknowledges
//! via [`Msg::Ack`]; the wrapper itself is *droppable* data, which is
//! exactly what exercises the retransmit path.

/// One message between shard ranks. Ranks `0..S` are shard workers; rank
/// `S` is the hub (coarse solver + norm reducer).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Boundary values a neighbour needs: `vals[i]` is the sender's iterate
    /// at the `i`-th ghost index of the `(from, to)` pair's
    /// [`ShardMap::ghost_indices`](crate::ShardMap::ghost_indices) list.
    Halo {
        /// Sending shard.
        from: u32,
        /// Sender's epoch when the values were gathered.
        epoch: u64,
        /// Sender's geometry version (adoptions applied). Zero with
        /// recovery off.
        ver: u32,
        /// Iterate values in ghost-index order.
        vals: Vec<f64>,
    },
    /// A shard's residual segment for the hub's assembled fine-grid
    /// residual.
    Residual {
        /// Sending shard.
        from: u32,
        /// Sender's epoch when the segment was computed.
        epoch: u64,
        /// Sender's geometry version. Zero with recovery off.
        ver: u32,
        /// Number of hub corrections the sender had applied by then (the
        /// hub's overshoot guard).
        corr_seen: u64,
        /// The shard's own rows of `b − A x`.
        vals: Vec<f64>,
    },
    /// One shard's contribution to the epoch's residual norm (the
    /// never-blocking reduction: the hub combines `S` of these per epoch).
    PartialNorm {
        /// Sending shard.
        from: u32,
        /// Epoch the partial sum belongs to.
        epoch: u64,
        /// Sender's geometry version — a partial norm only covers the rows
        /// the sender owned under that geometry. Zero with recovery off.
        ver: u32,
        /// `Σ r_i²` over the shard's own rows.
        sumsq: f64,
    },
    /// Coarse-grid correction restricted to the destination shard's rows
    /// (hub → shard).
    Correction {
        /// Hub cycle that produced the correction.
        cycle: u64,
        /// Hub's geometry version when the segment was cut. Zero with
        /// recovery off.
        ver: u32,
        /// Correction values for the destination's own rows, damping
        /// already applied.
        vals: Vec<f64>,
    },
    /// A reduction completed: the global relative residual of `epoch` is
    /// known (hub → shards, the AMReX-style `comm_complete` broadcast).
    NormComplete {
        /// Epoch the reduction covers. Strictly increasing per receiver.
        epoch: u64,
        /// Published global relative residual.
        relres: f64,
    },
    /// A shard's snapshot of its owned iterate segment (shard → hub,
    /// recovery only). The hub keeps the freshest per shard as the warm
    /// start it hands an adopter.
    Checkpoint {
        /// Sending shard.
        from: u32,
        /// Sender's epoch when the snapshot was taken.
        epoch: u64,
        /// Sender's geometry version (fixes which rows `vals` covers).
        ver: u32,
        /// The sender's owned iterate rows.
        vals: Vec<f64>,
    },
    /// Row adoption after a declared death (hub → every live shard, always
    /// wrapped in [`Msg::Reliable`]): shard `dead`'s rows move to shard
    /// `adopter`. Receivers apply adoptions in `index` order; each applied
    /// adoption bumps the receiver's geometry version.
    Adopt {
        /// Zero-based adoption sequence number (equals the geometry
        /// version this adoption upgrades *from*).
        index: u32,
        /// The shard declared dead.
        dead: u32,
        /// The surviving shard that takes over `dead`'s rows.
        adopter: u32,
        /// Hub's last checkpoint of the dead shard's rows — non-empty only
        /// toward the adopter, which splices it into its iterate.
        vals: Vec<f64>,
    },
    /// Acknowledges a [`Msg::Reliable`] delivery (shard → hub). Droppable:
    /// a lost ack just means one more retransmit.
    Ack {
        /// Acknowledging shard.
        from: u32,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Reliable-delivery wrapper for hub control-plane payloads
    /// (corrections, adoptions, stop). The receiver acks `seq` on every
    /// delivery and applies the payload once. Deliberately *droppable*
    /// data: loss is what the ack + bounded-retransmit layer absorbs.
    Reliable {
        /// Per-destination sequence number.
        seq: u64,
        /// The wrapped payload.
        inner: Box<Msg>,
    },
    /// Tolerance reached — finish up (hub → shards). Control: never
    /// dropped. With recovery on the hub instead sends `Stop` wrapped in
    /// [`Msg::Reliable`], trading transport-level reliability for the
    /// explicit ack/retransmit machinery.
    Stop,
    /// A shard finished (budget, stop request, or injected crash in the
    /// undefended model). Control: never dropped.
    Done {
        /// The finished shard.
        from: u32,
    },
    /// Fences a shard the hub declared dead (hub → shard, recovery only):
    /// a false-positive zombie that receives it exits silently — no `Done`,
    /// no publication — so its rows stay with the adopter. Control: never
    /// dropped.
    Evict,
}

impl Msg {
    /// `true` for the control messages a transport must deliver reliably.
    pub fn is_control(&self) -> bool {
        matches!(self, Msg::Stop | Msg::Done { .. } | Msg::Evict)
    }

    /// Stable lowercase kind name (diagnostics and fingerprints).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::Halo { .. } => "halo",
            Msg::Residual { .. } => "residual",
            Msg::PartialNorm { .. } => "partial_norm",
            Msg::Correction { .. } => "correction",
            Msg::NormComplete { .. } => "norm_complete",
            Msg::Checkpoint { .. } => "checkpoint",
            Msg::Adopt { .. } => "adopt",
            Msg::Ack { .. } => "ack",
            Msg::Reliable { .. } => "reliable",
            Msg::Stop => "stop",
            Msg::Done { .. } => "done",
            Msg::Evict => "evict",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert!(Msg::Stop.is_control());
        assert!(Msg::Done { from: 3 }.is_control());
        assert!(Msg::Evict.is_control());
        assert!(!Msg::Halo { from: 0, epoch: 0, ver: 0, vals: vec![] }.is_control());
        assert!(!Msg::NormComplete { epoch: 0, relres: 1.0 }.is_control());
        assert!(!Msg::Checkpoint { from: 0, epoch: 0, ver: 0, vals: vec![] }.is_control());
        assert!(!Msg::Ack { from: 0, seq: 0 }.is_control());
        assert_eq!(Msg::Stop.kind_name(), "stop");
        assert_eq!(
            Msg::PartialNorm { from: 0, epoch: 1, ver: 0, sumsq: 2.0 }.kind_name(),
            "partial_norm"
        );
    }

    /// The reliable wrapper is droppable data even when it carries a
    /// control payload — that is the whole point: loss of the wrapper is
    /// what the ack + retransmit layer recovers from.
    #[test]
    fn reliable_wrapper_is_droppable_data() {
        let wrapped = Msg::Reliable { seq: 7, inner: Box::new(Msg::Stop) };
        assert!(!wrapped.is_control());
        assert_eq!(wrapped.kind_name(), "reliable");
        let adopt = Msg::Adopt { index: 0, dead: 1, adopter: 0, vals: vec![1.0] };
        assert!(!adopt.is_control());
        assert_eq!(adopt.kind_name(), "adopt");
        assert_eq!(Msg::Evict.kind_name(), "evict");
    }
}
