//! Self-healing machinery for the sharded solve: recovery knobs, the
//! recovery report, and the hub's reliable-delivery bookkeeping.
//!
//! The pieces compose inside `solve.rs` (see `docs/sharding.md` for the
//! protocol walkthrough):
//!
//! * [`ShardRecovery`] arms the hub-side failure detector (bounded silence
//!   in epochs *and* clock time, both driven by the
//!   [`Clock`](asyncmg_threads::Clock) abstraction so `VirtualClock`
//!   replays are bit-identical), row adoption, periodic shard checkpoints,
//!   and the ack + bounded-retransmit control plane.
//! * `ReliableSender` / `ReliableReceiver` (crate-private) implement that
//!   control plane per destination: every wrapped payload carries a sequence
//!   number, the receiver acks every delivery and applies each sequence
//!   once, and the sender retransmits unacked payloads with exponential
//!   backoff until [`ShardRecovery::max_retransmits`] is exhausted — at
//!   which point the destination is declared dead.
//! * [`RecoveryReport`] is the run's recovery ledger, part of
//!   [`ShardResult`](crate::ShardResult) and of the harness fingerprint.
//!
//! Everything here is plain sequential state driven by the hub's loop —
//! determinism comes from the caller's scheduler and clock, not from
//! anything time-based in this module.

use crate::msg::Msg;
use std::time::Duration;

/// Recovery knobs of a sharded solve. `ShardOptions::recovery: None`
/// (the default) disables every code path in this module and keeps the
/// undefended solve bit-identical to the pre-recovery model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardRecovery {
    /// Declare a shard dead once the most advanced live shard has run this
    /// many epochs past the silent shard's last heard epoch. Progress-based:
    /// fires deterministically under `VirtualSched` regardless of wall
    /// time.
    pub silence_epochs: u64,
    /// Declare a shard dead after this much clock silence (the backstop
    /// that terminates even when *every* shard is dead and nobody advances
    /// epochs). Measured on the solve's [`Clock`](asyncmg_threads::Clock).
    pub silence: Duration,
    /// How long the hub sleeps on its clock when an iteration delivered no
    /// messages — the quantum that advances a `VirtualClock` toward the
    /// silence deadline.
    pub poll: Duration,
    /// Initial retransmit timeout for reliable control-plane payloads;
    /// doubles on every retry.
    pub rto: Duration,
    /// Retransmits per payload before the destination is declared dead.
    pub max_retransmits: u32,
    /// Whether a declared death triggers row adoption. With adoption off
    /// the dead shard's rows freeze at the hub's last checkpoint (detection
    /// and eviction still run).
    pub adopt: bool,
    /// A shard checkpoints its owned iterate segment to the hub every this
    /// many epochs (the warm start handed to an adopter).
    pub checkpoint_every: u64,
}

impl Default for ShardRecovery {
    fn default() -> Self {
        ShardRecovery {
            silence_epochs: 8,
            silence: Duration::from_millis(250),
            poll: Duration::from_micros(200),
            rto: Duration::from_millis(5),
            max_retransmits: 8,
            adopt: true,
            checkpoint_every: 4,
        }
    }
}

/// What recovery did during one sharded solve. All-zero when recovery was
/// off or never triggered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Shards the hub declared dead, in declaration order.
    pub dead_shards: Vec<u32>,
    /// Row adoptions `(dead, adopter)`, in application order.
    pub adoptions: Vec<(u32, u32)>,
    /// Reliable control-plane payloads retransmitted by the hub.
    pub retransmits: u64,
    /// Acks the hub received (including duplicates).
    pub acks: u64,
    /// Checkpoint snapshots the hub accepted.
    pub checkpoints: u64,
    /// `Evict` fences the hub sent to declared-dead shards.
    pub evictions: u64,
}

/// One unacknowledged reliable payload.
struct Outstanding {
    seq: u64,
    inner: Msg,
    sent_ns: u64,
    sent_ev: u64,
    retries: u32,
}

/// The hub's per-destination reliable-delivery state: sequence assignment,
/// the unacked window, and backoff-scheduled retransmission.
pub(crate) struct ReliableSender {
    next_seq: u64,
    window: Vec<Outstanding>,
    rto_ns: u64,
    /// Event-count retransmit interval: a payload is also due once this
    /// many fabric events passed since it was sent. Busy fabrics keep the
    /// hub's drain full, which can freeze a `VirtualClock` (it only
    /// advances on idle sleeps) — event progress guarantees retransmission
    /// anyway, deterministically.
    rto_ev: u64,
    max_retransmits: u32,
}

impl ReliableSender {
    pub(crate) fn new(rec: &ShardRecovery, rto_ev: u64) -> Self {
        ReliableSender {
            next_seq: 0,
            window: Vec::new(),
            rto_ns: (rec.rto.as_nanos() as u64).max(1),
            rto_ev: rto_ev.max(1),
            max_retransmits: rec.max_retransmits,
        }
    }

    /// Assigns the next sequence number, records the payload as unacked,
    /// and returns the wrapped message to put on the wire.
    pub(crate) fn send(&mut self, inner: Msg, now_ns: u64, now_ev: u64) -> Msg {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push(Outstanding {
            seq,
            inner: inner.clone(),
            sent_ns: now_ns,
            sent_ev: now_ev,
            retries: 0,
        });
        Msg::Reliable { seq, inner: Box::new(inner) }
    }

    /// Retires the acked sequence (duplicates are fine).
    pub(crate) fn on_ack(&mut self, seq: u64) {
        self.window.retain(|o| o.seq != seq);
    }

    /// Payloads due for retransmission — overdue on the clock *or* on the
    /// fabric-event count: each is re-wrapped under its original sequence
    /// number and both backoffs double. Returns the messages to resend.
    pub(crate) fn due(&mut self, now_ns: u64, now_ev: u64) -> Vec<Msg> {
        let mut resend = Vec::new();
        for o in &mut self.window {
            let shift = o.retries.min(62);
            let overdue = now_ns.saturating_sub(o.sent_ns)
                >= self.rto_ns.saturating_mul(1u64 << shift)
                || now_ev.saturating_sub(o.sent_ev) >= self.rto_ev.saturating_mul(1u64 << shift);
            if o.retries < self.max_retransmits && overdue {
                o.retries += 1;
                o.sent_ns = now_ns;
                o.sent_ev = now_ev;
                resend.push(Msg::Reliable { seq: o.seq, inner: Box::new(o.inner.clone()) });
            }
        }
        resend
    }

    /// Whether some payload has exhausted its retransmit budget and is
    /// overdue again — the sender's verdict that the destination is gone.
    pub(crate) fn exhausted(&self, now_ns: u64, now_ev: u64) -> bool {
        self.window.iter().any(|o| {
            let shift = o.retries.min(62);
            o.retries >= self.max_retransmits
                && (now_ns.saturating_sub(o.sent_ns) >= self.rto_ns.saturating_mul(1u64 << shift)
                    || now_ev.saturating_sub(o.sent_ev)
                        >= self.rto_ev.saturating_mul(1u64 << shift))
        })
    }

    /// Drops every unacked payload (the destination was declared dead).
    pub(crate) fn abandon(&mut self) {
        self.window.clear();
    }

    /// Drops unacked payloads matching `pred`: the caller superseded them
    /// with a fresher value, and retransmitting the stale version would do
    /// harm (e.g. an old coarse correction landing on an almost-converged
    /// iterate). The sequence numbers stay burned — the receiver's dedup
    /// window never sees them again.
    pub(crate) fn supersede<F: Fn(&Msg) -> bool>(&mut self, pred: F) {
        self.window.retain(|o| !pred(&o.inner));
    }
}

/// A shard's receive-side dedup window: acks everything, applies each
/// sequence once.
#[derive(Default)]
pub(crate) struct ReliableReceiver {
    applied: std::collections::BTreeSet<u64>,
}

impl ReliableReceiver {
    /// `true` exactly once per sequence number — the caller applies the
    /// payload on `true` and only acks on `false` (a duplicate delivery).
    pub(crate) fn accept(&mut self, seq: u64) -> bool {
        self.applied.insert(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> ShardRecovery {
        ShardRecovery { rto: Duration::from_nanos(100), max_retransmits: 2, ..Default::default() }
    }

    fn tx() -> ReliableSender {
        // A huge event interval keeps these tests purely clock-driven.
        ReliableSender::new(&rec(), u64::MAX / 4)
    }

    #[test]
    fn acked_payloads_are_never_retransmitted() {
        let mut tx = tx();
        let wire = tx.send(Msg::Stop, 0, 0);
        let Msg::Reliable { seq, inner } = wire else { panic!("expected wrapper") };
        assert_eq!((seq, *inner), (0, Msg::Stop));
        tx.on_ack(0);
        assert!(tx.due(1_000_000, 0).is_empty());
        assert!(!tx.exhausted(1_000_000, 0));
    }

    #[test]
    fn retransmits_back_off_exponentially_then_exhaust() {
        let mut tx = tx();
        tx.send(Msg::Stop, 0, 0);
        assert!(tx.due(99, 0).is_empty(), "not due before the rto");
        // Due at rto=100, then backoff doubles: next at +200, then done.
        assert_eq!(tx.due(100, 0).len(), 1);
        assert!(tx.due(250, 0).is_empty());
        assert_eq!(tx.due(300, 0).len(), 1);
        assert!(!tx.exhausted(300, 0), "budget just spent, grace window runs");
        assert!(tx.due(10_000, 0).is_empty(), "budget exhausted: no more resends");
        assert!(tx.exhausted(10_000, 0), "overdue after exhaustion: peer is gone");
        tx.abandon();
        assert!(!tx.exhausted(10_000, 0));
    }

    #[test]
    fn event_progress_drives_retransmission_under_a_frozen_clock() {
        let mut tx = ReliableSender::new(&rec(), 10);
        tx.send(Msg::Stop, 0, 0);
        assert!(tx.due(0, 9).is_empty(), "not due before the event interval");
        // Clock frozen at 0 throughout: events alone drive the schedule,
        // with the same doubling backoff (due at 10 events, then +20).
        assert_eq!(tx.due(0, 10).len(), 1);
        assert!(tx.due(0, 25).is_empty());
        assert_eq!(tx.due(0, 30).len(), 1);
        assert!(tx.due(0, 1_000).is_empty(), "budget exhausted");
        assert!(tx.exhausted(0, 1_000), "exhaustion also fires on events");
    }

    #[test]
    fn superseded_payloads_are_never_retransmitted() {
        let mut tx = tx();
        tx.send(Msg::Correction { cycle: 0, ver: 0, vals: vec![1.0] }, 0, 0);
        tx.supersede(|m| matches!(m, Msg::Correction { .. }));
        let wire = tx.send(Msg::Correction { cycle: 1, ver: 0, vals: vec![2.0] }, 0, 0);
        // Sequences keep advancing past the superseded payload…
        assert!(matches!(wire, Msg::Reliable { seq: 1, .. }));
        // …and only the fresh correction is ever due again.
        let due = tx.due(1_000, 0);
        assert_eq!(due.len(), 1);
        assert!(matches!(&due[0], Msg::Reliable { seq: 1, inner }
                if matches!(**inner, Msg::Correction { cycle: 1, .. })));
    }

    #[test]
    fn sequences_are_per_sender_monotone() {
        let mut tx = tx();
        let seqs: Vec<u64> = (0..3)
            .map(|_| match tx.send(Msg::Stop, 0, 0) {
                Msg::Reliable { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn receiver_applies_each_sequence_once() {
        let mut rx = ReliableReceiver::default();
        assert!(rx.accept(4));
        assert!(!rx.accept(4), "duplicate delivery is acked but not applied");
        assert!(rx.accept(2), "reordered lower sequence still applies");
    }
}
