//! The sharded rung of the resilient-session ladder.
//!
//! `asyncmg-core`'s degradation ladder ([`Rung`]) knows a
//! [`Rung::Sharded`] variant but cannot execute it — the core crate has no
//! dependency on the sharded model. This module closes the loop:
//! [`ShardedRungDriver`] implements [`ShardRungDriver`] over
//! [`solve_sharded_clocked`], and [`sharded_ladder`] builds the escalation
//! sequence the paper's resilience story wants — start wide, halve the
//! shard count on every failed attempt (S → S/2 → … → 1), then fall
//! through to the existing shared-memory ladder. Every sharded attempt
//! runs with recovery armed, so a crashed shard degrades the attempt
//! instead of hanging the session, and the session's checkpoint store
//! warm-starts the next, narrower rung from the hub-assembled iterate.

use crate::inproc::InProcChannel;
use crate::recovery::ShardRecovery;
use crate::solve::{solve_sharded_clocked, ShardOptions};
use crate::transport::Transport;
use crate::virtual_net::VirtualTransport;
use asyncmg_core::{Rung, ShardAttempt, ShardAttemptOutcome, ShardRungDriver};
use asyncmg_telemetry::NoopProbe;
use asyncmg_threads::{OsSched, Sched, VirtualClock, VirtualSched};

/// Executes [`Rung::Sharded`] session rungs with self-healing armed.
///
/// Seeded sessions get the fully virtual deterministic stack — a
/// [`VirtualSched`] and [`VirtualTransport`] derived from the attempt seed
/// plus a [`VirtualClock`] — so a resilient session that degrades through
/// sharded rungs replays bit-identically. Unseeded sessions run the
/// production stack: [`InProcChannel`] sized for recovery traffic,
/// [`OsSched`], OS clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardedRungDriver {
    /// Recovery knobs armed for every attempt (default:
    /// [`ShardRecovery::default`]).
    pub recovery: ShardRecovery,
}

impl ShardRungDriver for ShardedRungDriver {
    fn run(&self, at: &ShardAttempt<'_>) -> ShardAttemptOutcome {
        let n_shards = (at.shards as usize).clamp(1, at.setup.n());
        let opts = ShardOptions {
            n_shards,
            t_max: at.t_max,
            tolerance: Some(at.tolerance),
            recovery: Some(self.recovery),
            ..ShardOptions::default()
        };
        let ranks = n_shards + 1;
        let result = match at.seed {
            Some(seed) => {
                let sched = VirtualSched::new(seed);
                // Same transport-seed derivation as the harness, so a
                // session attempt and a standalone replay agree bit for bit.
                let net =
                    VirtualTransport::new(ranks, seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
                let clock = VirtualClock::new();
                solve_sharded_clocked(
                    at.setup,
                    at.b,
                    &opts,
                    &net as &dyn Transport,
                    &sched as &dyn Sched,
                    None,
                    Some(&clock),
                    &NoopProbe,
                )
            }
            None => {
                let net = InProcChannel::for_epochs_resilient(ranks, at.t_max);
                let sched = OsSched::for_teams(&vec![1; ranks]);
                solve_sharded_clocked(
                    at.setup,
                    at.b,
                    &opts,
                    &net as &dyn Transport,
                    &sched as &dyn Sched,
                    None,
                    None,
                    &NoopProbe,
                )
            }
        };
        ShardAttemptOutcome {
            x: result.x,
            outcome: result.outcome,
            corrections: result.hub_cycles as f64,
            elapsed: result.elapsed,
            faults: result.faults,
        }
    }
}

/// The sharded degradation ladder: `shards`, then half of that, halving
/// down to one shard, then the full shared-memory ladder
/// ([`Rung::LADDER`]). `sharded_ladder(4)` is
/// `[Sharded 4, Sharded 2, Sharded 1, AsyncAtomic, …, Pcg]`.
pub fn sharded_ladder(shards: u32) -> Vec<Rung> {
    let mut ladder = Vec::new();
    let mut s = shards.max(1);
    loop {
        ladder.push(Rung::Sharded { shards: s });
        if s == 1 {
            break;
        }
        s /= 2;
    }
    ladder.extend(Rung::LADDER);
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_halves_down_to_one_then_falls_through() {
        let l = sharded_ladder(4);
        assert_eq!(
            &l[..3],
            &[
                Rung::Sharded { shards: 4 },
                Rung::Sharded { shards: 2 },
                Rung::Sharded { shards: 1 }
            ]
        );
        assert_eq!(&l[3..], &Rung::LADDER);
        assert_eq!(sharded_ladder(0).len(), 1 + Rung::LADDER.len());
        assert_eq!(sharded_ladder(1)[0], Rung::Sharded { shards: 1 });
    }
}
