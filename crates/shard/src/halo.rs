//! Row partitions and halo (ghost-row) exchange maps.
//!
//! A [`ShardMap`] fixes, once per solve, which contiguous row range each
//! shard owns and — from the fine-grid sparsity pattern — exactly which of
//! its values every neighbour reads: the ghost indices of the ordered pair
//! `(from, to)` are the columns owned by `from` that appear in `to`'s rows.
//! Senders gather values in ghost-index order, receivers scatter them back
//! by the same list, so halo assembly round-trips losslessly (the proptests
//! in this module pin that down for arbitrary partitions).

use asyncmg_sparse::Csr;
use std::ops::Range;

/// The static communication geometry of one sharded solve.
#[derive(Clone, Debug)]
pub struct ShardMap {
    ranges: Vec<Range<usize>>,
    /// `ghosts[from * n_shards + to]`: sorted column indices owned by
    /// `from` and referenced by rows of `to` (empty on the diagonal).
    ghosts: Vec<Vec<u32>>,
}

impl ShardMap {
    /// Builds the map for `ranges` (disjoint, contiguous, covering
    /// `0..a.nrows()` in order) over the sparsity of `a`.
    pub fn new(a: &Csr, ranges: Vec<Range<usize>>) -> Self {
        let s = ranges.len();
        assert!(s > 0, "at least one shard");
        let mut expect = 0;
        for r in &ranges {
            assert_eq!(r.start, expect, "ranges must tile 0..n contiguously");
            assert!(r.end >= r.start);
            expect = r.end;
        }
        assert_eq!(expect, a.nrows(), "ranges must cover every row");

        let owner = |col: usize| ranges.partition_point(|r| r.end <= col);
        let mut ghosts = vec![Vec::new(); s * s];
        for (to, range) in ranges.iter().enumerate() {
            for i in range.clone() {
                let (cols, _) = a.row(i);
                for &j in cols {
                    let from = owner(j as usize);
                    if from != to {
                        ghosts[from * s + to].push(j);
                    }
                }
            }
        }
        for list in &mut ghosts {
            list.sort_unstable();
            list.dedup();
        }
        ShardMap { ranges, ghosts }
    }

    /// Builds the map for `n_shards` equal chunks of `a`'s rows (the layout
    /// `Hierarchy::partitions` produces for the fine level).
    pub fn chunked(a: &Csr, n_shards: usize) -> Self {
        let n = a.nrows();
        let ranges = (0..n_shards).map(|p| asyncmg_threads::chunk_range(n, n_shards, p)).collect();
        Self::new(a, ranges)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The row range shard `s` owns.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.ranges[s].clone()
    }

    /// All row ranges.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// The shard owning row (or column) `i`.
    pub fn owner_of(&self, i: usize) -> usize {
        self.ranges.partition_point(|r| r.end <= i)
    }

    /// The exact ghost indices of the ordered pair: columns owned by `from`
    /// that rows of `to` read. Sorted, unique.
    pub fn ghost_indices(&self, from: usize, to: usize) -> &[u32] {
        &self.ghosts[from * self.ranges.len() + to]
    }

    /// The peers shard `from` must send halo values to.
    pub fn neighbors_out(&self, from: usize) -> Vec<usize> {
        (0..self.ranges.len())
            .filter(|&to| to != from && !self.ghost_indices(from, to).is_empty())
            .collect()
    }

    /// Gathers `x` at the `(from, to)` ghost indices into `out`
    /// (cleared first).
    pub fn gather(&self, from: usize, to: usize, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.ghost_indices(from, to).iter().map(|&j| x[j as usize]));
    }

    /// Rewires the map after a declared death: `adopter` takes over
    /// `dead`'s rows and the ghost-exchange lists are rebuilt from the
    /// sparsity of `a` for the merged layout. Every shard strictly between
    /// the two must already own an empty range (i.e. have been adopted
    /// away earlier), so the merged range stays contiguous; `dead`'s range
    /// collapses to an empty range pinned at the merge boundary, keeping
    /// the `0..n` tiling invariant intact.
    ///
    /// Every participant of a solve applies the same adoption sequence in
    /// the same order, so the rewired maps — and hence the gather/scatter
    /// index lists — agree bit-for-bit (the proptests in
    /// `tests/shard_recovery.rs` pin this against a fresh
    /// [`ShardMap::new`] over the merged ranges).
    pub fn adopt(&mut self, a: &Csr, dead: usize, adopter: usize) {
        let s = self.ranges.len();
        assert!(dead < s && adopter < s, "shard index out of range");
        assert_ne!(dead, adopter, "a shard cannot adopt itself");
        let (lo, hi) = if adopter < dead { (adopter, dead) } else { (dead, adopter) };
        for k in lo + 1..hi {
            assert!(
                self.ranges[k].is_empty(),
                "shards between dead {dead} and adopter {adopter} must hold empty ranges"
            );
        }
        let merged = self.ranges[lo].start..self.ranges[hi].end;
        let mut ranges = self.ranges.clone();
        for (k, r) in ranges.iter_mut().enumerate().take(hi + 1).skip(lo) {
            *r = if k < adopter {
                merged.start..merged.start
            } else if k > adopter {
                merged.end..merged.end
            } else {
                merged.clone()
            };
        }
        *self = ShardMap::new(a, ranges);
    }

    /// Scatters received halo values back into `x` by the `(from, to)`
    /// ghost-index list. Returns `false` (leaving `x` untouched) when the
    /// length does not match the list — a malformed message.
    pub fn scatter(&self, from: usize, to: usize, vals: &[f64], x: &mut [f64]) -> bool {
        let idx = self.ghost_indices(from, to);
        if vals.len() != idx.len() {
            return false;
        }
        for (&j, &v) in idx.iter().zip(vals) {
            x[j as usize] = v;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_problems::stencil::laplacian_7pt;
    use proptest::prelude::*;

    fn map_for(n_shards: usize) -> (Csr, ShardMap) {
        let a = laplacian_7pt(4, 4, 4);
        let map = ShardMap::chunked(&a, n_shards);
        (a, map)
    }

    #[test]
    fn ghost_indices_match_sparsity_exactly() {
        let (a, map) = map_for(3);
        for to in 0..3 {
            // Reference: every off-shard column read by `to`'s rows.
            let mut expect: Vec<Vec<u32>> = vec![Vec::new(); 3];
            for i in map.range(to) {
                let (cols, _) = a.row(i);
                for &j in cols {
                    let from = map.owner_of(j as usize);
                    if from != to {
                        expect[from].push(j);
                    }
                }
            }
            for (from, exp) in expect.iter_mut().enumerate() {
                exp.sort_unstable();
                exp.dedup();
                assert_eq!(map.ghost_indices(from, to), exp.as_slice(), "{from}->{to}");
            }
        }
    }

    #[test]
    fn single_shard_has_no_neighbors() {
        let (_, map) = map_for(1);
        assert!(map.neighbors_out(0).is_empty());
        assert_eq!(map.range(0).len(), 64);
    }

    #[test]
    fn scatter_rejects_wrong_length() {
        let (_, map) = map_for(2);
        let mut x = vec![0.0; 64];
        assert!(!map.scatter(0, 1, &[1.0], &mut x));
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn adoption_merges_ranges_and_rewires_ghosts() {
        let a = laplacian_7pt(4, 4, 4);
        let mut map = ShardMap::chunked(&a, 3);
        let dead_rows = map.range(1);
        map.adopt(&a, 1, 0);
        assert_eq!(map.n_shards(), 3, "shard count is fixed for the solve");
        assert_eq!(map.range(0), 0..dead_rows.end);
        assert!(map.range(1).is_empty());
        // The rewired map agrees exactly with a fresh map over the merged
        // ranges: same ghosts, same neighbours.
        let fresh = ShardMap::new(&a, map.ranges().to_vec());
        for from in 0..3 {
            assert_eq!(map.neighbors_out(from), fresh.neighbors_out(from));
            for to in 0..3 {
                assert_eq!(map.ghost_indices(from, to), fresh.ghost_indices(from, to));
            }
        }
        // A dead shard has no rows, so nobody needs its values.
        assert!(map.neighbors_out(1).is_empty());
        // Chained adoption: with shard 1 empty, shard 2 can adopt shard 0
        // across it.
        map.adopt(&a, 0, 2);
        assert_eq!(map.range(2), 0..64);
        assert!(map.range(0).is_empty() && map.range(1).is_empty());
    }

    /// Turns arbitrary cut positions into a partition of `0..n` into
    /// contiguous non-empty ranges (the stand-in `proptest` has no
    /// `prop_map`, so tests draw raw cuts and call this in the body).
    fn ranges_from_cuts(n: usize, cuts: Vec<usize>) -> Vec<Range<usize>> {
        let mut cuts: Vec<usize> = cuts.into_iter().filter(|&c| c > 0 && c < n).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut ranges = Vec::new();
        let mut start = 0;
        for c in cuts {
            ranges.push(start..c);
            start = c;
        }
        ranges.push(start..n);
        ranges
    }

    proptest! {
        /// Halo assembly round-trips losslessly for arbitrary partitions:
        /// gathering a sender's values and scattering them at the receiver
        /// reconstructs the sender's iterate at every ghost position.
        #[test]
        fn halo_round_trip_is_lossless(
            cuts in prop::collection::vec(1usize..64, 0..5),
            seed in 0u64..1000,
        ) {
            let a = laplacian_7pt(4, 4, 4);
            let map = ShardMap::new(&a, ranges_from_cuts(64, cuts));
            let s = map.n_shards();
            let x_true: Vec<f64> =
                (0..64).map(|i| ((i as u64).wrapping_mul(seed + 1) % 997) as f64).collect();
            for from in 0..s {
                for to in map.neighbors_out(from) {
                    let mut wire = Vec::new();
                    map.gather(from, to, &x_true, &mut wire);
                    let mut x_rx = vec![f64::NAN; 64];
                    prop_assert!(map.scatter(from, to, &wire, &mut x_rx));
                    for &j in map.ghost_indices(from, to) {
                        prop_assert_eq!(x_rx[j as usize].to_bits(), x_true[j as usize].to_bits());
                    }
                }
            }
        }

        /// Every ghost index is owned by the sender and actually read by
        /// the receiver, and every cross-shard dependency is covered.
        #[test]
        fn ghost_indices_are_exact(cuts in prop::collection::vec(1usize..64, 0..4)) {
            let a = laplacian_7pt(4, 4, 4);
            let map = ShardMap::new(&a, ranges_from_cuts(64, cuts));
            let s = map.n_shards();
            for from in 0..s {
                for to in 0..s {
                    for &j in map.ghost_indices(from, to) {
                        prop_assert_eq!(map.owner_of(j as usize), from);
                    }
                }
            }
            // Coverage: each off-shard read of each row appears in a list.
            for to in 0..s {
                for i in map.range(to) {
                    let (cols, _) = a.row(i);
                    for &j in cols {
                        let from = map.owner_of(j as usize);
                        if from != to {
                            prop_assert!(
                                map.ghost_indices(from, to).binary_search(&j).is_ok(),
                                "column {} of row {} missing from {}->{}", j, i, from, to
                            );
                        }
                    }
                }
            }
        }
    }
}
