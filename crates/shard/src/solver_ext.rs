//! The ergonomic entry point: [`Solver::sharded`](ShardedExt::sharded).
//!
//! [`Sharded`] is a configured sharded solve, built from a core
//! [`Solver`]'s snapshot ([`SolverConfig`](asyncmg_core::SolverConfig)) so
//! tolerance, budget and fault
//! plan carry over. Defaults are production-grade — [`InProcChannel`] sized
//! for the epoch budget, [`OsSched`] — and both the transport and the
//! scheduler can be overridden for deterministic testing
//! ([`VirtualTransport`](crate::VirtualTransport) +
//! [`VirtualSched`](asyncmg_threads::VirtualSched)).

use crate::inproc::InProcChannel;
use crate::recovery::ShardRecovery;
use crate::solve::{solve_sharded_clocked, ShardOptions, ShardResult};
use crate::transport::Transport;
use asyncmg_core::{MgSetup, SolveError, Solver};
use asyncmg_telemetry::{NoopProbe, ReductionRecord, TelemetryProbe};
use asyncmg_threads::{Clock, FaultPlan, OsSched, Sched};

/// Extends the core [`Solver`] builder with a sharded execution model.
pub trait ShardedExt<'a> {
    /// A sharded solve over `n_shards` shard workers plus one hub rank,
    /// inheriting the solver's epoch budget, tolerance and fault plan.
    fn sharded(&self, n_shards: usize) -> Sharded<'a>;
}

impl<'a> ShardedExt<'a> for Solver<'a> {
    fn sharded(&self, n_shards: usize) -> Sharded<'a> {
        let cfg = self.config();
        Sharded {
            setup: self.setup_ref(),
            opts: ShardOptions {
                n_shards,
                t_max: cfg.t_max,
                tolerance: cfg.tolerance,
                ..ShardOptions::default()
            },
            plan: self.plan_ref(),
            collect_trace: false,
            transport: None,
            sched: None,
            clock: None,
        }
    }
}

/// A configured sharded solve. Construct via
/// [`Solver::sharded`](ShardedExt::sharded), adjust with the builder
/// methods, then [`run`](Sharded::run) or [`try_run`](Sharded::try_run).
pub struct Sharded<'a> {
    setup: &'a MgSetup,
    opts: ShardOptions,
    plan: Option<&'a FaultPlan>,
    collect_trace: bool,
    transport: Option<&'a dyn Transport>,
    sched: Option<&'a dyn Sched>,
    clock: Option<&'a dyn Clock>,
}

impl<'a> Sharded<'a> {
    /// Sets the epoch budget per shard.
    pub fn t_max(mut self, t_max: usize) -> Self {
        self.opts.t_max = t_max;
        self
    }

    /// Sets (or clears) the stopping tolerance on the reduced relative
    /// residual.
    pub fn tolerance(mut self, tol: Option<f64>) -> Self {
        self.opts.tolerance = tol;
        self
    }

    /// Sets the smoothing sweeps per epoch.
    pub fn sweeps(mut self, sweeps: usize) -> Self {
        self.opts.sweeps = sweeps;
        self
    }

    /// Sets the damping factor applied to coarse corrections.
    pub fn damping(mut self, damping: f64) -> Self {
        self.opts.damping = damping;
        self
    }

    /// Installs (or clears) a fault plan; faults compose at the shard's
    /// send boundary, independent of the transport.
    pub fn fault_plan(mut self, plan: Option<&'a FaultPlan>) -> Self {
        self.plan = plan;
        self
    }

    /// Overrides the transport. Must connect `n_shards + 1` ranks.
    pub fn transport(mut self, transport: &'a dyn Transport) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Overrides the scheduler (e.g. a seeded
    /// [`VirtualSched`](asyncmg_threads::VirtualSched) for bit-identical
    /// replay).
    pub fn sched(mut self, sched: &'a dyn Sched) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Arms (or disarms) self-healing: the hub-side failure detector, row
    /// adoption, periodic checkpoints and the reliable control plane (see
    /// [`ShardRecovery`]). `None` — the default — keeps the undefended
    /// solve bit-identical to the recovery-free model.
    pub fn recovery(mut self, recovery: Option<ShardRecovery>) -> Self {
        self.opts.recovery = recovery;
        self
    }

    /// Overrides the clock that drives the failure detector's silence
    /// deadlines and retransmit backoff (e.g. a
    /// [`VirtualClock`](asyncmg_threads::VirtualClock) so recovery replays
    /// are bit-identical and tests never sleep).
    pub fn clock(mut self, clock: &'a dyn Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Records telemetry: the result's `trace` carries per-rank message
    /// statistics and the published reductions (schema `asyncmg-trace-v5`).
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Validates the configuration and runs the sharded solve.
    pub fn try_run(&self, b: &[f64]) -> Result<ShardResult, SolveError> {
        let n = self.setup.n();
        if b.len() != n {
            return Err(SolveError::RhsLength { expected: n, got: b.len() });
        }
        if let Some(index) = b.iter().position(|v| !v.is_finite()) {
            return Err(SolveError::NonFiniteRhs { index });
        }
        let o = &self.opts;
        if o.n_shards == 0 {
            return Err(SolveError::InvalidOptions("n_shards must be at least 1".into()));
        }
        if o.n_shards > n {
            return Err(SolveError::InvalidOptions(format!(
                "n_shards {} exceeds the fine-grid dimension {n}",
                o.n_shards
            )));
        }
        if o.t_max == 0 {
            return Err(SolveError::InvalidOptions("t_max must be positive".into()));
        }
        if o.sweeps == 0 {
            return Err(SolveError::InvalidOptions("sweeps must be at least 1".into()));
        }
        if let Some(t) = o.tolerance {
            if !t.is_finite() || t <= 0.0 {
                return Err(SolveError::InvalidOptions(format!("tolerance {t} must be positive")));
            }
        }
        if !(o.damping > 0.0 && o.damping <= 2.0) {
            return Err(SolveError::InvalidOptions(format!(
                "damping {} outside (0, 2]",
                o.damping
            )));
        }
        let ranks = o.n_shards + 1;
        if let Some(t) = self.transport {
            if t.n_ranks() != ranks {
                return Err(SolveError::InvalidOptions(format!(
                    "transport connects {} ranks but the solve needs {ranks}",
                    t.n_ranks()
                )));
            }
        }

        let default_net;
        let transport: &dyn Transport = match self.transport {
            Some(t) => t,
            None => {
                default_net = if o.recovery.is_some() {
                    // Recovery traffic (checkpoints, retransmits, acks,
                    // adoption) needs headroom beyond the undefended budget.
                    InProcChannel::for_epochs_resilient(ranks, o.t_max)
                } else {
                    InProcChannel::for_epochs(ranks, o.t_max)
                };
                &default_net
            }
        };
        let default_sched;
        let sched: &dyn Sched = match self.sched {
            Some(s) => s,
            None => {
                default_sched = OsSched::for_teams(&vec![1; ranks]);
                &default_sched
            }
        };

        let mut result = if self.collect_trace {
            let mut probe = TelemetryProbe::with_threads(ranks);
            let mut result = solve_sharded_clocked(
                self.setup, b, o, transport, sched, self.plan, self.clock, &probe,
            );
            let mut trace = probe.take_trace();
            trace.messages = result.stats.to_telemetry();
            // The hub is the reliable sender: attribute its retransmits.
            if let Some(hub) = trace.messages.last_mut() {
                hub.retransmits = result.recovery.retransmits;
            }
            trace.reductions = result
                .reductions
                .iter()
                .map(|r| ReductionRecord {
                    epoch: r.epoch,
                    relres: r.relres,
                    parts: r.parts,
                    t_ns: 0,
                })
                .collect();
            result.trace = Some(trace);
            result
        } else {
            solve_sharded_clocked(
                self.setup, b, o, transport, sched, self.plan, self.clock, &NoopProbe,
            )
        };
        result.x.shrink_to_fit();
        Ok(result)
    }

    /// [`Self::try_run`], panicking on configuration errors.
    pub fn run(&self, b: &[f64]) -> ShardResult {
        match self.try_run(b) {
            Ok(r) => r,
            Err(e) => panic!("sharded solve misconfigured: {e}"),
        }
    }
}
