//! The never-blocking asynchronous residual reduction.
//!
//! Shards never wait on a norm: each epoch they fire a
//! [`Msg::PartialNorm`](crate::Msg::PartialNorm) at the hub and move on. The
//! hub feeds every arrival into a [`NormReducer`], which completes an epoch
//! the moment all `parts` contributions are in — the AMReX
//! `comm_complete`-style flag is [`NormReducer::is_complete`] — and
//! publishes completions in strictly increasing epoch order no matter how
//! the network reordered the arrivals: completing an epoch retires every
//! older pending epoch, so a straggling epoch can never be published after
//! a newer one (the monotonicity proptest below).

use std::collections::BTreeMap;

/// One published reduction: the global relative residual of an epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reduction {
    /// The shard epoch the reduction covers.
    pub epoch: u64,
    /// `√(Σ partial sums) / ‖b‖` (or the absolute norm for `‖b‖ = 0`).
    pub relres: f64,
    /// Contributions combined (the shard count).
    pub parts: u32,
}

/// Epoch-tagged accumulator of per-shard partial squared norms.
#[derive(Clone, Debug)]
pub struct NormReducer {
    parts: u32,
    norm_b: f64,
    /// Epoch → (contributions so far, Σ sumsq).
    pending: BTreeMap<u64, (u32, f64)>,
    /// Highest published epoch.
    last: Option<u64>,
}

impl NormReducer {
    /// A reducer expecting `parts` contributions per epoch, normalising by
    /// `norm_b` (`‖b‖`; a zero norm publishes absolute norms).
    pub fn new(parts: usize, norm_b: f64) -> Self {
        assert!(parts > 0);
        NormReducer { parts: parts as u32, norm_b, pending: BTreeMap::new(), last: None }
    }

    /// Feeds one shard's `Σ r_i²` for `epoch`. Contributions for epochs at
    /// or below the last published one are stale and ignored.
    pub fn offer(&mut self, epoch: u64, sumsq: f64) {
        if self.last.is_some_and(|l| epoch <= l) {
            return;
        }
        let slot = self.pending.entry(epoch).or_insert((0, 0.0));
        slot.0 += 1;
        slot.1 += sumsq;
    }

    /// The `comm_complete` flag: whether `epoch` has every contribution.
    pub fn is_complete(&self, epoch: u64) -> bool {
        self.pending.get(&epoch).is_some_and(|&(c, _)| c >= self.parts)
    }

    /// Publishes the next complete epoch, if any: the smallest complete
    /// pending epoch, retiring everything at or below it. Call in a loop to
    /// drain. Published epochs are strictly increasing across the reducer's
    /// lifetime.
    pub fn try_complete(&mut self) -> Option<Reduction> {
        let epoch = self
            .pending
            .iter()
            .find(|&(_, &(count, _))| count >= self.parts)
            .map(|(&epoch, _)| epoch)?;
        let (_, sumsq) = self.pending.remove(&epoch).unwrap();
        // Retire older, never-to-complete epochs so they cannot be
        // published out of order later.
        self.pending.retain(|&e, _| e > epoch);
        self.last = Some(epoch);
        let norm = sumsq.max(0.0).sqrt();
        let relres = if self.norm_b > 0.0 { norm / self.norm_b } else { norm };
        Some(Reduction { epoch, relres, parts: self.parts })
    }

    /// Number of epochs with outstanding contributions.
    pub fn pending_epochs(&self) -> usize {
        self.pending.len()
    }

    /// Contributions currently required per epoch.
    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// Removes one expected contribution per epoch — the hub calls this
    /// when it declares a shard dead, so reductions keep completing from
    /// the survivors. Never drops below one part.
    pub fn retire_part(&mut self) {
        self.parts = self.parts.saturating_sub(1).max(1);
    }

    /// Discards every pending (incomplete) epoch while keeping the
    /// published-epoch watermark. Paired with [`Self::retire_part`] after
    /// a death: epochs partially filled under the old shard count would
    /// otherwise complete from a mix of pre- and post-death coverage.
    pub fn clear_pending(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn completes_only_with_all_parts() {
        let mut red = NormReducer::new(3, 2.0);
        red.offer(0, 1.0);
        red.offer(0, 1.0);
        assert!(!red.is_complete(0));
        assert!(red.try_complete().is_none());
        red.offer(0, 2.0);
        assert!(red.is_complete(0));
        let r = red.try_complete().unwrap();
        assert_eq!(r.epoch, 0);
        assert_eq!(r.parts, 3);
        // Σ sumsq = 1 + 1 + 2 = 4, √4 / ‖b‖ = 2 / 2.
        assert_eq!(r.relres, 1.0);
        assert!(red.try_complete().is_none());
    }

    #[test]
    fn stale_contributions_are_ignored() {
        let mut red = NormReducer::new(1, 1.0);
        red.offer(5, 1.0);
        assert_eq!(red.try_complete().unwrap().epoch, 5);
        // Epoch 3 arrives late: never published, never accumulated.
        red.offer(3, 9.0);
        assert!(red.try_complete().is_none());
        assert_eq!(red.pending_epochs(), 0);
    }

    #[test]
    fn completing_an_epoch_retires_older_incomplete_ones() {
        let mut red = NormReducer::new(2, 1.0);
        red.offer(1, 1.0); // incomplete forever
        red.offer(4, 1.0);
        red.offer(4, 3.0);
        let r = red.try_complete().unwrap();
        assert_eq!(r.epoch, 4);
        assert_eq!(r.relres, 2.0);
        // Epoch 1's second contribution arrives after: stays unpublished.
        red.offer(1, 1.0);
        assert!(red.try_complete().is_none());
    }

    #[test]
    fn retiring_a_part_lets_survivors_complete_epochs() {
        let mut red = NormReducer::new(3, 1.0);
        red.offer(2, 1.0);
        red.offer(2, 1.0);
        assert!(red.try_complete().is_none());
        // Shard death: one fewer contribution expected, and the
        // mixed-coverage pending epoch is discarded rather than completed.
        red.retire_part();
        red.clear_pending();
        assert_eq!(red.parts(), 2);
        assert!(red.try_complete().is_none());
        red.offer(3, 2.0);
        red.offer(3, 2.0);
        let r = red.try_complete().unwrap();
        assert_eq!((r.epoch, r.parts), (3, 2));
        assert_eq!(r.relres, 2.0);
        // The watermark survives the clear: stale epochs stay ignored.
        red.offer(1, 9.0);
        assert!(red.try_complete().is_none());
    }

    #[test]
    fn retire_part_never_drops_below_one() {
        let mut red = NormReducer::new(1, 1.0);
        red.retire_part();
        assert_eq!(red.parts(), 1);
        red.offer(0, 4.0);
        assert_eq!(red.try_complete().unwrap().relres, 2.0);
    }

    #[test]
    fn zero_rhs_publishes_absolute_norms() {
        let mut red = NormReducer::new(1, 0.0);
        red.offer(0, 9.0);
        assert_eq!(red.try_complete().unwrap().relres, 3.0);
    }

    proptest! {
        /// Monotonicity under arbitrary reordering: shuffle any multiset of
        /// (shard, epoch) contributions, drop an arbitrary subset — the
        /// published epoch sequence is strictly increasing, and every
        /// published epoch combined exactly `parts` contributions.
        #[test]
        fn published_epochs_are_monotone(
            order in prop::collection::vec((0usize..3, 0u64..12), 0..80),
            drop_mask in prop::collection::vec(0u8..8, 0..80),
        ) {
            let parts = 3;
            let mut red = NormReducer::new(parts, 1.0);
            let mut seen: std::collections::BTreeMap<(usize, u64), u32> = Default::default();
            let mut published = Vec::new();
            for (i, &(shard, epoch)) in order.iter().enumerate() {
                // At most one contribution per (shard, epoch), like real
                // shards; an optional drop models lost messages.
                let dropped = drop_mask.get(i).is_some_and(|&d| d == 0);
                if dropped || *seen.entry((shard, epoch)).or_insert(0) > 0 {
                    continue;
                }
                seen.insert((shard, epoch), 1);
                red.offer(epoch, (shard + 1) as f64);
                while let Some(r) = red.try_complete() {
                    published.push(r);
                }
            }
            for pair in published.windows(2) {
                prop_assert!(pair[0].epoch < pair[1].epoch,
                    "published epochs not strictly increasing: {:?}", published);
            }
            for r in &published {
                prop_assert_eq!(r.parts, parts as u32);
                // All three shards contributed: sumsq = 1 + 2 + 3 = 6.
                prop_assert_eq!(r.relres, 6.0f64.sqrt());
            }
        }
    }
}
