//! The testing transport: seeded message delay, reordering and loss.
//!
//! [`VirtualTransport`] is the network analogue of
//! [`VirtualSched`](asyncmg_threads::VirtualSched): all nondeterminism is
//! drawn from one seeded generator, so a solve run under `VirtualSched`
//! (which serialises the workers and hence the transport calls) replays
//! bit-identically for the same pair of seeds. Time is the transport's own
//! operation counter — every `send`/`try_recv` ticks it, mirroring how
//! [`VirtualClock`](asyncmg_threads::VirtualClock) advances on observation —
//! so a message delayed by `d` becomes deliverable after `d` further
//! transport operations, and differing delays reorder messages of the same
//! sender.
//!
//! Loss policy: data messages are dropped with the configured probability;
//! control messages ([`Msg::is_control`]) are always delivered (possibly
//! late), keeping termination schedule- and loss-independent. `FaultPlan`
//! composition happens one layer up, at the send boundary of the shard
//! worker (see `docs/sharding.md`): a `DropWrite` fault suppresses the
//! shard's outgoing data for the epoch *before* it reaches any transport,
//! so node-loss faults behave identically over
//! [`InProcChannel`](crate::InProcChannel) and this transport, which adds
//! seeded random
//! *link* loss on top.

use crate::msg::Msg;
use crate::transport::{RankCounters, Transport, TransportStats};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Mutex;

struct Pending {
    deliver_at: u64,
    seq: u64,
    msg: Msg,
}

struct VState {
    rng: StdRng,
    /// Transport operation counter (the fabric's clock).
    ops: u64,
    /// Global send sequence, the reorder tie-breaker.
    seq: u64,
    /// In-flight messages per destination rank.
    inboxes: Vec<Vec<Pending>>,
    counters: Vec<RankCounters>,
}

/// Seeded lossy transport for deterministic shard-level testing.
pub struct VirtualTransport {
    n: usize,
    max_delay: u64,
    drop_prob: f64,
    state: Mutex<VState>,
}

impl VirtualTransport {
    /// An ideal fabric (no delay, no loss) over `n_ranks` ranks — still
    /// useful: delivery order across senders follows the seeded sequence
    /// numbers rather than wall-clock racing.
    pub fn new(n_ranks: usize, seed: u64) -> Self {
        Self::with_profile(n_ranks, seed, 0, 0.0)
    }

    /// A fabric whose data messages are delayed by a uniform
    /// `0..=max_delay` transport operations and dropped with probability
    /// `drop_prob`.
    pub fn with_profile(n_ranks: usize, seed: u64, max_delay: u64, drop_prob: f64) -> Self {
        assert!(n_ranks > 0);
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob {drop_prob} out of [0, 1]");
        VirtualTransport {
            n: n_ranks,
            max_delay,
            drop_prob,
            state: Mutex::new(VState {
                rng: StdRng::seed_from_u64(seed),
                ops: 0,
                seq: 0,
                inboxes: (0..n_ranks).map(|_| Vec::new()).collect(),
                counters: vec![RankCounters::default(); n_ranks],
            }),
        }
    }
}

impl Transport for VirtualTransport {
    fn n_ranks(&self) -> usize {
        self.n
    }

    fn send(&self, from: usize, to: usize, msg: Msg) {
        let s = &mut *self.state.lock().unwrap();
        s.ops += 1;
        s.counters[from].sent += 1;
        let control = msg.is_control();
        if !control && self.drop_prob > 0.0 && s.rng.gen_bool(self.drop_prob) {
            s.counters[to].dropped += 1;
            return;
        }
        let delay =
            if !control && self.max_delay > 0 { s.rng.gen_range(0..=self.max_delay) } else { 0 };
        let seq = s.seq;
        s.seq += 1;
        s.inboxes[to].push(Pending { deliver_at: s.ops + delay, seq, msg });
    }

    fn try_recv(&self, rank: usize) -> Option<Msg> {
        let s = &mut *self.state.lock().unwrap();
        s.ops += 1;
        let now = s.ops;
        let best = s.inboxes[rank]
            .iter()
            .enumerate()
            .filter(|(_, p)| p.deliver_at <= now)
            .min_by_key(|(_, p)| (p.deliver_at, p.seq))
            .map(|(i, _)| i);
        let i = best?;
        let pending = s.inboxes[rank].remove(i);
        s.counters[rank].delivered += 1;
        Some(pending.msg)
    }

    fn stats(&self) -> TransportStats {
        let s = self.state.lock().unwrap();
        TransportStats {
            per_rank: s.counters.clone(),
            pending: s.inboxes.iter().map(|q| q.len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(net: &VirtualTransport, rank: usize, tries: usize) -> Vec<Msg> {
        let mut got = Vec::new();
        for _ in 0..tries {
            if let Some(m) = net.try_recv(rank) {
                got.push(m);
            }
        }
        got
    }

    #[test]
    fn ideal_profile_delivers_in_send_order() {
        let net = VirtualTransport::new(2, 1);
        for epoch in 0..5u64 {
            net.send(0, 1, Msg::PartialNorm { from: 0, epoch, ver: 0, sumsq: 0.0 });
        }
        let epochs: Vec<u64> = drain(&net, 1, 10)
            .into_iter()
            .filter_map(|m| match m {
                Msg::PartialNorm { epoch, .. } => Some(epoch),
                _ => None,
            })
            .collect();
        assert_eq!(epochs, vec![0, 1, 2, 3, 4]);
        assert!(net.stats().conserved());
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = |seed: u64| {
            let net = VirtualTransport::with_profile(2, seed, 6, 0.25);
            for epoch in 0..40u64 {
                net.send(0, 1, Msg::PartialNorm { from: 0, epoch, ver: 0, sumsq: 0.0 });
            }
            let order: Vec<Msg> = drain(&net, 1, 200);
            (order, net.stats())
        };
        let (a, sa) = run(9);
        let (b, sb) = run(9);
        let (c, _) = run(10);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.conserved());
        assert_ne!(a, c, "different seeds should reorder/drop differently");
    }

    #[test]
    fn delays_reorder_but_conserve() {
        let net = VirtualTransport::with_profile(2, 3, 16, 0.0);
        for epoch in 0..30u64 {
            net.send(0, 1, Msg::PartialNorm { from: 0, epoch, ver: 0, sumsq: 0.0 });
        }
        let got = drain(&net, 1, 300);
        assert_eq!(got.len(), 30, "no-loss profile must deliver everything");
        let epochs: Vec<u64> = got
            .iter()
            .filter_map(|m| match m {
                Msg::PartialNorm { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        let mut sorted = epochs.clone();
        sorted.sort_unstable();
        assert_ne!(epochs, sorted, "a 16-op delay spread should reorder 30 sends");
        assert!(net.stats().conserved());
    }

    #[test]
    fn control_messages_survive_full_loss() {
        let net = VirtualTransport::with_profile(2, 4, 0, 1.0);
        net.send(0, 1, Msg::Residual { from: 0, epoch: 0, ver: 0, corr_seen: 0, vals: vec![1.0] });
        net.send(0, 1, Msg::Stop);
        net.send(0, 1, Msg::Done { from: 0 });
        let got = drain(&net, 1, 10);
        assert_eq!(got, vec![Msg::Stop, Msg::Done { from: 0 }]);
        let stats = net.stats();
        assert_eq!(stats.total_dropped(), 1);
        assert!(stats.conserved());
    }
}
