//! The production transport: a matrix of lock-free SPSC rings.
//!
//! Every ordered rank pair `(from, to)` owns one
//! [`SpscRing`]; rank `from`'s worker thread is
//! the ring's only producer and rank `to`'s its only consumer, which is
//! exactly the SPSC contract. Receives round-robin over the receiver's
//! incoming rings so no sender can starve another. Nothing ever blocks: a
//! full ring rejects the push and the message is counted as overflowed —
//! [`InProcChannel::for_epochs`] sizes the rings so that cannot happen
//! within a solve's epoch budget.

use crate::msg::Msg;
use crate::transport::{RankCounters, Transport, TransportStats};
use asyncmg_threads::SpscRing;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shared-memory message fabric over lock-free SPSC rings.
pub struct InProcChannel {
    n: usize,
    /// `rings[from * n + to]`.
    rings: Vec<SpscRing<Msg>>,
    /// Round-robin scan position per receiving rank.
    cursor: Vec<AtomicUsize>,
    sent: Vec<AtomicU64>,
    delivered: Vec<AtomicU64>,
    overflowed: Vec<AtomicU64>,
}

impl InProcChannel {
    /// A fabric over `n_ranks` ranks with ring capacity `capacity` per
    /// ordered pair.
    pub fn new(n_ranks: usize, capacity: usize) -> Self {
        assert!(n_ranks > 0);
        InProcChannel {
            n: n_ranks,
            rings: (0..n_ranks * n_ranks).map(|_| SpscRing::with_capacity(capacity)).collect(),
            cursor: (0..n_ranks).map(|_| AtomicUsize::new(0)).collect(),
            sent: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            delivered: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            overflowed: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A fabric sized for a solve of `t_max` epochs: a shard sends at most
    /// two messages per epoch to any one peer (residual + partial norm to
    /// the hub) plus one terminal control message, so `2 t_max + 8` slots
    /// per pair make overflow impossible within the budget.
    pub fn for_epochs(n_ranks: usize, t_max: usize) -> Self {
        Self::new(n_ranks, 2 * t_max + 8)
    }

    /// A fabric sized for a *recovery-armed* solve of `t_max` epochs: on
    /// top of the [`Self::for_epochs`] budget each pair may carry periodic
    /// checkpoints, reliable-wrapper retransmits, acks, and adoption
    /// payloads. Overflowed reliable payloads are recovered by
    /// retransmission anyway, so generous-but-finite sizing suffices.
    pub fn for_epochs_resilient(n_ranks: usize, t_max: usize) -> Self {
        Self::new(n_ranks, 8 * t_max + 64)
    }
}

impl Transport for InProcChannel {
    fn n_ranks(&self) -> usize {
        self.n
    }

    fn send(&self, from: usize, to: usize, msg: Msg) {
        self.sent[from].fetch_add(1, Ordering::Relaxed);
        if self.rings[from * self.n + to].push(msg).is_err() {
            self.overflowed[to].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_recv(&self, rank: usize) -> Option<Msg> {
        let start = self.cursor[rank].load(Ordering::Relaxed);
        for k in 0..self.n {
            let from = (start + k) % self.n;
            if let Some(msg) = self.rings[from * self.n + rank].pop() {
                self.cursor[rank].store((from + 1) % self.n, Ordering::Relaxed);
                self.delivered[rank].fetch_add(1, Ordering::Relaxed);
                return Some(msg);
            }
        }
        None
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            per_rank: (0..self.n)
                .map(|r| RankCounters {
                    sent: self.sent[r].load(Ordering::Relaxed),
                    delivered: self.delivered[r].load(Ordering::Relaxed),
                    dropped: 0,
                    overflowed: self.overflowed[r].load(Ordering::Relaxed),
                })
                .collect(),
            pending: self.rings.iter().map(|r| r.len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_point_to_point_in_order() {
        let net = InProcChannel::new(3, 8);
        net.send(0, 2, Msg::PartialNorm { from: 0, epoch: 0, ver: 0, sumsq: 1.0 });
        net.send(0, 2, Msg::PartialNorm { from: 0, epoch: 1, ver: 0, sumsq: 2.0 });
        net.send(1, 2, Msg::Done { from: 1 });
        let mut got = Vec::new();
        while let Some(m) = net.try_recv(2) {
            got.push(m);
        }
        assert_eq!(got.len(), 3);
        // Per-pair FIFO: rank 0's two norms arrive in epoch order.
        let epochs: Vec<u64> = got
            .iter()
            .filter_map(|m| match m {
                Msg::PartialNorm { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        assert_eq!(epochs, vec![0, 1]);
        assert!(net.try_recv(2).is_none());
        let stats = net.stats();
        assert_eq!(stats.total_sent(), 3);
        assert_eq!(stats.total_delivered(), 3);
        assert_eq!(stats.pending, 0);
        assert!(stats.conserved());
    }

    #[test]
    fn round_robin_does_not_starve_any_sender() {
        let net = InProcChannel::new(3, 32);
        for epoch in 0..10u64 {
            net.send(0, 2, Msg::PartialNorm { from: 0, epoch, ver: 0, sumsq: 0.0 });
            net.send(1, 2, Msg::PartialNorm { from: 1, epoch, ver: 0, sumsq: 0.0 });
        }
        // The first four receives must include both senders.
        let mut senders = Vec::new();
        for _ in 0..4 {
            if let Some(Msg::PartialNorm { from, .. }) = net.try_recv(2) {
                senders.push(from);
            }
        }
        assert!(senders.contains(&0) && senders.contains(&1), "{senders:?}");
    }

    #[test]
    fn overflow_is_counted_never_blocking() {
        let net = InProcChannel::new(2, 2);
        for _ in 0..5 {
            net.send(0, 1, Msg::Stop);
        }
        let stats = net.stats();
        assert_eq!(stats.total_sent(), 5);
        assert_eq!(stats.per_rank[1].overflowed, 3);
        assert_eq!(stats.pending, 2);
        assert!(stats.conserved());
    }
}
