//! Sharded message-passing execution of asynchronous multigrid.
//!
//! The shared-memory solvers in `asyncmg-core` model the paper's
//! asynchronous smoothing with racy reads of one shared iterate. This crate
//! recasts the same algorithm over *explicit messages*: the fine grid is
//! row-partitioned into shards (reusing the hierarchy's partition cache),
//! each shard runs its own worker, and every cross-shard dependency —
//! halo ghost values, coarse-grid corrections, the residual-norm reduction —
//! travels through a [`Transport`]. Nothing ever blocks on a message: a
//! missing halo means smoothing against slightly stale ghosts, and the norm
//! reduction ([`NormReducer`]) completes epochs out-of-band, exactly the
//! asynchronous semantics of the paper with the races made inspectable.
//!
//! Two transports ship:
//!
//! * [`InProcChannel`] — production: a matrix of lock-free SPSC rings.
//! * [`VirtualTransport`] — testing: seeded delay/reorder/drop, composable
//!   with [`FaultPlan`](asyncmg_threads::FaultPlan) (sender-side drops model
//!   node loss; the transport adds link loss), and deterministic under
//!   [`VirtualSched`](asyncmg_threads::VirtualSched) — same seeds, same
//!   bits.
//!
//! Entry points: [`Solver::sharded`](ShardedExt::sharded) for the builder,
//! [`solve_sharded_sched`] for explicit transport + scheduler control.
//!
//! ```
//! use asyncmg_core::{MgSetup, Solver};
//! use asyncmg_shard::ShardedExt;
//!
//! let a = asyncmg_problems::stencil::laplacian_27pt(8, 8, 8);
//! let h = asyncmg_amg::build_hierarchy(a, &asyncmg_amg::AmgOptions::default());
//! let setup = MgSetup::new(h, Default::default());
//! let b = vec![1.0; setup.n()];
//! let result = Solver::new(&setup).tolerance(1e-8).t_max(200).sharded(2).run(&b);
//! assert!(result.relres < 1e-8);
//! ```

pub mod halo;
pub mod inproc;
pub mod msg;
pub mod recovery;
pub mod reduce;
pub mod rung;
pub mod solve;
pub mod solver_ext;
pub mod transport;
pub mod virtual_net;

pub use halo::ShardMap;
pub use inproc::InProcChannel;
pub use msg::Msg;
pub use recovery::{RecoveryReport, ShardRecovery};
pub use reduce::{NormReducer, Reduction};
pub use rung::{sharded_ladder, ShardedRungDriver};
pub use solve::{solve_sharded_clocked, solve_sharded_sched, ShardOptions, ShardResult};
pub use solver_ext::{Sharded, ShardedExt};
pub use transport::{RankCounters, Transport, TransportStats};
pub use virtual_net::VirtualTransport;
