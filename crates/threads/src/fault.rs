//! Deterministic fault injection for the team runtime.
//!
//! A [`FaultPlan`] describes *which* failures to inject into a solve —
//! stalled workers, permanently dead grid teams, corrupted or dropped
//! correction writes — without owning any mutable state. Every decision is
//! a pure function of the plan's seed and the *site* asking (worker or grid
//! id plus the per-worker round counter), hashed through splitmix64. That
//! makes plans:
//!
//! * **deterministic** — the same plan makes the same decisions no matter
//!   how the OS interleaves threads, so fault runs replay bit-identically
//!   under [`crate::VirtualSched`] and statistically under
//!   [`crate::OsSched`];
//! * **coherent across a team** — all members of a grid team compute the
//!   same crash/corrupt/drop verdict for a given round, so barrier
//!   protocols cannot be torn apart by members disagreeing about a fault;
//! * **composable** — a plan is orthogonal to the scheduler: the scheduler
//!   decides *when* code runs, the plan decides *what fails*.
//!
//! The solver calls the decision methods at its fault sites; the plan never
//! calls into the solver.

/// How a corrupted correction write is mangled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// The written value becomes `NaN` (silent poison without guards).
    Nan,
    /// The written value becomes `+∞`.
    Inf,
    /// One high exponent bit of the value is flipped, producing a finite
    /// but wildly out-of-scale number — the case magnitude guards exist
    /// for.
    BitFlip,
}

/// One injected failure mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Worker `worker` becomes a straggler: for `rounds` rounds starting
    /// at `from_round` it is descheduled for `steps` extra scheduling
    /// decisions per round.
    Straggler { worker: usize, from_round: u64, rounds: u64, steps: u32 },
    /// Team `team` crashes permanently at round `at_round`: its workers
    /// stop correcting and leave the solve.
    Crash { team: usize, at_round: u64 },
    /// Grid `grid`'s correction write at round `at_round` is corrupted.
    CorruptWrite { grid: usize, at_round: u64, kind: Corruption },
    /// Grid `grid`'s correction writes are dropped with probability
    /// `prob` per round.
    DropWrite { grid: usize, prob: f64 },
}

/// A seeded, deterministic set of failures to inject into one solve.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given decision seed. The
    /// seed only matters for probabilistic faults ([`Fault::DropWrite`])
    /// and for bit-flip target selection.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Adds a fault to the plan (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        if let Fault::DropWrite { prob, .. } = fault {
            assert!((0.0..=1.0).contains(&prob), "drop probability out of [0,1]");
        }
        self.faults.push(fault);
        self
    }

    /// The plan's decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults this plan injects.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Extra scheduling decisions worker `worker` must burn at round
    /// `round` (0 when it is not a straggler there).
    pub fn stall_steps(&self, worker: usize, round: u64) -> u32 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Straggler { worker: w, from_round, rounds, steps }
                    if w == worker && round >= from_round && round < from_round + rounds =>
                {
                    Some(steps)
                }
                _ => None,
            })
            .sum()
    }

    /// Whether team `team` is (or has already) crashed at round `round`.
    /// Monotone in `round`: once crashed, always crashed.
    pub fn team_crashed(&self, team: usize, round: u64) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Crash { team: t, at_round } => t == team && round >= at_round,
            _ => false,
        })
    }

    /// The corruption to apply to grid `grid`'s write at round `round`,
    /// if any. Identical for every member of the grid's team.
    pub fn corruption(&self, grid: usize, round: u64) -> Option<Corruption> {
        self.faults.iter().find_map(|f| match *f {
            Fault::CorruptWrite { grid: g, at_round, kind } if g == grid && round == at_round => {
                Some(kind)
            }
            _ => None,
        })
    }

    /// Whether grid `grid`'s write at round `round` is dropped. A pure
    /// function of (seed, grid, round): no RNG state, so the verdict is
    /// the same from every thread and on every replay.
    pub fn drops_write(&self, grid: usize, round: u64) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::DropWrite { grid: g, prob } if g == grid => {
                unit_f64(site_hash(self.seed, 0xD209, grid as u64, round)) < prob
            }
            _ => false,
        })
    }

    /// Applies `kind` to the value `v` written by grid `grid` at round
    /// `round`.
    pub fn corrupt_value(&self, kind: Corruption, v: f64, grid: usize, round: u64) -> f64 {
        match kind {
            Corruption::Nan => f64::NAN,
            Corruption::Inf => f64::INFINITY,
            Corruption::BitFlip => {
                // Flip one of the top 11 exponent bits so the result is
                // finite but out of scale by many orders of magnitude.
                let bit = 52 + site_hash(self.seed, 0xB17F, grid as u64, round) % 11;
                f64::from_bits(v.to_bits() ^ (1u64 << bit))
            }
        }
    }
}

/// splitmix64: a full-avalanche 64-bit mixer (public domain constants).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless hash of a decision site.
fn site_hash(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    splitmix64(seed ^ splitmix64(tag ^ splitmix64(a ^ splitmix64(b))))
}

/// Maps a hash to a uniform f64 in [0, 1).
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(7)
            .with(Fault::Straggler { worker: 1, from_round: 3, rounds: 2, steps: 5 })
            .with(Fault::Crash { team: 2, at_round: 10 })
            .with(Fault::CorruptWrite { grid: 0, at_round: 4, kind: Corruption::Nan })
            .with(Fault::DropWrite { grid: 3, prob: 0.5 })
    }

    #[test]
    fn decisions_are_deterministic() {
        let p1 = plan();
        let p2 = plan();
        for round in 0..64 {
            assert_eq!(p1.drops_write(3, round), p2.drops_write(3, round));
            assert_eq!(p1.corruption(0, round), p2.corruption(0, round));
            assert_eq!(p1.stall_steps(1, round), p2.stall_steps(1, round));
        }
        assert_eq!(
            p1.corrupt_value(Corruption::BitFlip, 1.5, 0, 9).to_bits(),
            p2.corrupt_value(Corruption::BitFlip, 1.5, 0, 9).to_bits()
        );
    }

    #[test]
    fn straggler_window_is_bounded() {
        let p = plan();
        assert_eq!(p.stall_steps(1, 2), 0);
        assert_eq!(p.stall_steps(1, 3), 5);
        assert_eq!(p.stall_steps(1, 4), 5);
        assert_eq!(p.stall_steps(1, 5), 0);
        assert_eq!(p.stall_steps(0, 3), 0, "only the named worker straggles");
    }

    #[test]
    fn crash_is_permanent() {
        let p = plan();
        assert!(!p.team_crashed(2, 9));
        assert!(p.team_crashed(2, 10));
        assert!(p.team_crashed(2, 1_000_000));
        assert!(!p.team_crashed(0, 1_000_000));
    }

    #[test]
    fn corruption_hits_exactly_its_round() {
        let p = plan();
        assert_eq!(p.corruption(0, 3), None);
        assert_eq!(p.corruption(0, 4), Some(Corruption::Nan));
        assert_eq!(p.corruption(0, 5), None);
        assert_eq!(p.corruption(1, 4), None);
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let p = plan();
        let dropped = (0..10_000).filter(|&r| p.drops_write(3, r)).count();
        assert!((3_500..6_500).contains(&dropped), "{dropped} drops at prob 0.5");
        assert_eq!((0..10_000).filter(|&r| p.drops_write(0, r)).count(), 0);
    }

    #[test]
    fn corrupt_values_break_the_write() {
        let p = plan();
        assert!(p.corrupt_value(Corruption::Nan, 1.0, 0, 0).is_nan());
        assert!(p.corrupt_value(Corruption::Inf, 1.0, 0, 0).is_infinite());
        let flipped = p.corrupt_value(Corruption::BitFlip, 1.0, 0, 0);
        assert_ne!(flipped.to_bits(), 1.0f64.to_bits());
        // An exponent-bit flip of a normal value is out of scale (or
        // non-finite) — the situation magnitude guards must catch.
        assert!(!flipped.is_finite() || flipped.abs() > 1e3 || flipped.abs() < 1e-3);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new(0);
        assert!(p.is_empty());
        assert_eq!(p.stall_steps(0, 0), 0);
        assert!(!p.team_crashed(0, u64::MAX));
        assert_eq!(p.corruption(0, 0), None);
        assert!(!p.drops_write(0, 0));
    }
}
