//! A raw spin lock for the paper's lock-write protocol.
//!
//! Algorithm 5's lock-write option has the *team master* acquire a lock,
//! the whole team write its disjoint rows between team barriers, and the
//! master release it. A guard-based mutex fits that asymmetric pattern
//! badly (the guard would have to be forgotten and force-unlocked), so the
//! runtime exposes a raw lock whose acquire and release are explicit calls.

use std::sync::atomic::{AtomicBool, Ordering};

/// A raw test-and-test-and-set spin lock.
///
/// Unlike a `Mutex`, the lock is not tied to a guard: [`SpinLock::lock`]
/// and [`SpinLock::unlock`] may be called from the same thread around a
/// multi-thread critical section (the team-write pattern above). The caller
/// is responsible for pairing them.
pub struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    /// A new, unlocked lock.
    pub const fn new() -> Self {
        SpinLock { locked: AtomicBool::new(false) }
    }

    /// Acquires the lock, spinning (and eventually yielding) until free.
    pub fn lock(&self) {
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            let mut spins = 0u32;
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscription-friendly, like SpinBarrier.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Releases the lock. Must follow a matching [`SpinLock::lock`].
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

impl Default for SpinLock {
    fn default() -> Self {
        SpinLock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = SpinLock::new();
        let counter = AtomicUsize::new(0);
        let inside = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        lock.lock();
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                        counter.fetch_add(1, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4000);
    }

    #[test]
    fn lock_and_unlock_may_cross_threads() {
        // The team-write pattern: one thread locks, another unlocks after a
        // synchronisation point.
        let lock = SpinLock::new();
        lock.lock();
        std::thread::scope(|s| {
            s.spawn(|| lock.unlock());
        });
        lock.lock();
        lock.unlock();
    }
}
