//! A shared `f64` buffer written in disjoint ranges between barriers.
//!
//! Team-local vectors in Algorithm 5 (`r^k`, `x^k`, the per-level `e` and `c`
//! work vectors) are written by the team's threads in disjoint row ranges,
//! with a team barrier between a write phase and any read of another
//! thread's range. [`RacyVec`] encodes that pattern: it hands out raw
//! sub-slices through an `UnsafeCell`, with a safety contract that writers
//! never overlap each other or concurrent readers, and that reads of another
//! thread's writes are separated from them by a barrier (which provides the
//! Acquire/Release edge).

use std::cell::UnsafeCell;

/// A fixed-length shared buffer of `f64` with caller-enforced aliasing rules.
pub struct RacyVec {
    data: UnsafeCell<Box<[f64]>>,
    len: usize,
}

// SAFETY: all access goes through the unsafe methods below whose contracts
// require externally-synchronised disjoint access.
unsafe impl Sync for RacyVec {}
unsafe impl Send for RacyVec {}

impl RacyVec {
    /// A zero-initialised buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        RacyVec { data: UnsafeCell::new(vec![0.0; n].into_boxed_slice()), len: n }
    }

    /// A buffer initialised from a slice.
    pub fn from_slice(s: &[f64]) -> Self {
        RacyVec { data: UnsafeCell::new(s.to_vec().into_boxed_slice()), len: s.len() }
    }

    /// Length of the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A mutable view of `range`.
    ///
    /// # Safety
    /// Between two barrier synchronisations, no other thread may read or
    /// write any element of `range`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        let data = &mut *self.data.get();
        &mut data[range]
    }

    /// A shared view of the whole buffer.
    ///
    /// # Safety
    /// Every element read must either have been written by this thread, or
    /// the write must be separated from this read by a barrier; no concurrent
    /// writer may overlap the elements actually read.
    #[inline]
    pub unsafe fn as_slice(&self) -> &[f64] {
        &*self.data.get()
    }

    /// Exclusive view for single-threaded phases (setup, verification).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        unsafe { &mut *self.data.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::SpinBarrier;
    use std::sync::Arc;

    #[test]
    fn exclusive_access() {
        let mut v = RacyVec::zeros(4);
        v.as_mut_slice()[2] = 5.0;
        unsafe {
            assert_eq!(v.as_slice()[2], 5.0);
        }
    }

    #[test]
    fn disjoint_parallel_writes_with_barrier() {
        let n = 1024;
        let nthreads = 4;
        let v = Arc::new(RacyVec::zeros(n));
        let b = Arc::new(SpinBarrier::new(nthreads));
        let mut handles = Vec::new();
        for t in 0..nthreads {
            let v = Arc::clone(&v);
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let range = crate::partition::chunk_range(n, nthreads, t);
                // Phase 1: write own chunk.
                unsafe {
                    for (off, x) in v.slice_mut(range.clone()).iter_mut().enumerate() {
                        *x = (range.start + off) as f64;
                    }
                }
                b.wait();
                // Phase 2: read everything.
                let total: f64 = unsafe { v.as_slice().iter().sum() };
                let expect = (n * (n - 1) / 2) as f64;
                assert_eq!(total, expect);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn from_slice_copies() {
        let v = RacyVec::from_slice(&[1.0, 2.0]);
        unsafe {
            assert_eq!(v.as_slice(), &[1.0, 2.0]);
        }
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }
}
