//! A shared `f64` buffer written in disjoint ranges between barriers.
//!
//! Team-local vectors in Algorithm 5 (`r^k`, `x^k`, the per-level `e` and `c`
//! work vectors) are written by the team's threads in disjoint row ranges,
//! with a team barrier between a write phase and any read of another
//! thread's range. [`RacyVec`] encodes that pattern: it hands out raw
//! sub-slices through an `UnsafeCell`, with a safety contract that writers
//! never overlap each other or concurrent readers, and that reads of another
//! thread's writes are separated from them by a barrier (which provides the
//! Acquire/Release edge).

use std::cell::UnsafeCell;

/// A fixed-length shared buffer of `f64` with caller-enforced aliasing rules.
pub struct RacyVec {
    data: UnsafeCell<Box<[f64]>>,
    len: usize,
}

// SAFETY: all access goes through the unsafe methods below whose contracts
// require externally-synchronised disjoint access.
unsafe impl Sync for RacyVec {}
unsafe impl Send for RacyVec {}

impl RacyVec {
    /// A zero-initialised buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        RacyVec { data: UnsafeCell::new(vec![0.0; n].into_boxed_slice()), len: n }
    }

    /// A buffer initialised from a slice.
    pub fn from_slice(s: &[f64]) -> Self {
        RacyVec { data: UnsafeCell::new(s.to_vec().into_boxed_slice()), len: s.len() }
    }

    /// Length of the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A mutable view of `range`.
    ///
    /// # Safety
    /// Between two barrier synchronisations, no other thread may read or
    /// write any element of `range`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        let data = &mut *self.data.get();
        &mut data[range]
    }

    /// A shared view of the whole buffer.
    ///
    /// # Safety
    /// Every element read must either have been written by this thread, or
    /// the write must be separated from this read by a barrier; no concurrent
    /// writer may overlap the elements actually read.
    #[inline]
    pub unsafe fn as_slice(&self) -> &[f64] {
        &*self.data.get()
    }

    /// Exclusive view for single-threaded phases (setup, verification).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        unsafe { &mut *self.data.get() }
    }
}

/// A fixed-length shared buffer of any `Copy` element with caller-enforced
/// aliasing rules.
///
/// The generic sibling of [`RacyVec`], used by the parallel setup-phase
/// kernels in `asyncmg-sparse` to fill `u32` index arrays and `f64` value
/// arrays from multiple threads at provably disjoint positions (each thread
/// owns a contiguous output region fixed by a prior symbolic pass, or a
/// scatter pattern whose destinations are disjoint by construction).
pub struct RacyBuf<T: Copy> {
    data: UnsafeCell<Box<[T]>>,
    len: usize,
}

// SAFETY: all access goes through the unsafe methods below whose contracts
// require externally-synchronised disjoint access.
unsafe impl<T: Copy + Send> Sync for RacyBuf<T> {}
unsafe impl<T: Copy + Send> Send for RacyBuf<T> {}

impl<T: Copy> RacyBuf<T> {
    /// A buffer of length `n` with every element set to `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        RacyBuf { data: UnsafeCell::new(vec![fill; n].into_boxed_slice()), len: n }
    }

    /// A buffer taking ownership of an existing vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        let len = v.len();
        RacyBuf { data: UnsafeCell::new(v.into_boxed_slice()), len }
    }

    /// Length of the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A mutable view of `range`.
    ///
    /// # Safety
    /// Between two barrier synchronisations (or thread join points), no other
    /// thread may read or write any element of `range`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        let data = &mut *self.data.get();
        &mut data[range]
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// Between two barrier synchronisations (or thread join points), no other
    /// thread may read or write element `i`.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        let data = &mut *self.data.get();
        data[i] = v;
    }

    /// A shared view of the whole buffer.
    ///
    /// # Safety
    /// Every element read must either have been written by this thread, or
    /// the write must be separated from this read by a barrier or thread
    /// join; no concurrent writer may overlap the elements actually read.
    #[inline]
    pub unsafe fn as_slice(&self) -> &[T] {
        &*self.data.get()
    }

    /// Consumes the buffer, returning the underlying vector (after all
    /// threads are joined, reading is race-free by construction).
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_inner().into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::SpinBarrier;
    use std::sync::Arc;

    #[test]
    fn exclusive_access() {
        let mut v = RacyVec::zeros(4);
        v.as_mut_slice()[2] = 5.0;
        unsafe {
            assert_eq!(v.as_slice()[2], 5.0);
        }
    }

    #[test]
    fn disjoint_parallel_writes_with_barrier() {
        let n = 1024;
        let nthreads = 4;
        let v = Arc::new(RacyVec::zeros(n));
        let b = Arc::new(SpinBarrier::new(nthreads));
        let mut handles = Vec::new();
        for t in 0..nthreads {
            let v = Arc::clone(&v);
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let range = crate::partition::chunk_range(n, nthreads, t);
                // Phase 1: write own chunk.
                unsafe {
                    for (off, x) in v.slice_mut(range.clone()).iter_mut().enumerate() {
                        *x = (range.start + off) as f64;
                    }
                }
                b.wait();
                // Phase 2: read everything.
                let total: f64 = unsafe { v.as_slice().iter().sum() };
                let expect = (n * (n - 1) / 2) as f64;
                assert_eq!(total, expect);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn from_slice_copies() {
        let v = RacyVec::from_slice(&[1.0, 2.0]);
        unsafe {
            assert_eq!(v.as_slice(), &[1.0, 2.0]);
        }
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn racy_buf_round_trip() {
        let b = RacyBuf::<u32>::filled(3, 7);
        unsafe {
            b.set(1, 42);
            assert_eq!(b.as_slice(), &[7, 42, 7]);
        }
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.into_vec(), vec![7, 42, 7]);
    }

    #[test]
    fn racy_buf_disjoint_parallel_writes() {
        let n = 257;
        let nthreads = 4;
        let b = RacyBuf::<u32>::from_vec(vec![0; n]);
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let b = &b;
                s.spawn(move || {
                    let range = crate::partition::chunk_range(n, nthreads, t);
                    let chunk = unsafe { b.slice_mut(range.clone()) };
                    for (off, x) in chunk.iter_mut().enumerate() {
                        *x = (range.start + off) as u32;
                    }
                });
            }
        });
        let v = b.into_vec();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }
}
