//! Thread teams, barriers and static loop partitioning.
//!
//! The paper implements asynchronous multigrid in OpenMP: every grid `k` of
//! the hierarchy owns a subset of threads, operations inside a grid are
//! OpenMP `parallel for` loops over that subset with static scheduling, and
//! *only* the threads of one grid synchronise with each other (the blue
//! `Sync()` calls of Figure 3). This crate provides the equivalent runtime:
//!
//! * [`SpinBarrier`] — a sense-reversing barrier used for both team-local and
//!   global synchronisation points,
//! * [`chunk_range`] — OpenMP-style static partitioning of an iteration
//!   space,
//! * [`partition`] — work-proportional assignment of threads to grids
//!   (Section IV: "threads are distributed among the grids to balance the
//!   amount of work"),
//! * [`TeamCtx`] / [`run_teams`] — a fork-join entry point that launches one
//!   OS thread per team member and hands each a context describing its team,
//! * [`RacyVec`] — a shared `f64` buffer written in disjoint ranges between
//!   barriers (team-local vectors of Algorithm 5),
//! * [`RacyBuf`] — its generic sibling for index/value arrays filled at
//!   disjoint positions by the parallel setup-phase kernels,
//! * [`SpinLock`] — the raw lock behind the paper's lock-write option,
//! * [`SpscRing`] — a bounded lock-free single-producer/single-consumer
//!   ring, the per-rank-pair wire of the sharded message-passing transport,
//! * [`Sched`] / [`OsSched`] / [`VirtualSched`] — the schedule abstraction:
//!   every point where a team worker touches real concurrency goes through
//!   a [`Sched`], so the same solver code runs under the production
//!   scheduler or under a deterministic seeded one for testing
//!   ([`run_teams_sched`]),
//! * [`FaultPlan`] — seeded, deterministic fault injection (stragglers,
//!   team crashes, corrupted/dropped writes) whose decisions are pure
//!   functions of the injection site, composable with either scheduler,
//! * [`Clock`] / [`OsClock`] / [`VirtualClock`] — the time abstraction:
//!   watchdog budgets, stall windows and session backoff/deadlines read
//!   time through a [`Clock`], so timeout paths are testable (and the
//!   resilience session replayable) without sleeping wall-clock time.

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod barrier;
pub mod clock;
pub mod fault;
pub mod lock;
pub mod partition;
pub mod racy;
pub mod sched;
pub mod spsc;
pub mod team;

pub use barrier::SpinBarrier;
pub use clock::{Clock, OsClock, VirtualClock};
pub use fault::{Corruption, Fault, FaultPlan};
pub use lock::SpinLock;
pub use partition::{chunk_range, GridTeamLayout};
pub use racy::{RacyBuf, RacyVec};
pub use sched::{run_teams_sched, OsSched, ReadDelay, Sched, SchedPoint, VirtualSched};
pub use spsc::SpscRing;
pub use team::{run_teams, TeamCtx};
