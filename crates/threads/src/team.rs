//! Fork-join execution of grid teams.
//!
//! [`run_teams`] launches one OS thread per team member and calls the
//! provided closure with a [`TeamCtx`] describing the thread's position.
//! All threads are joined before `run_teams` returns, so the closure may
//! borrow stack data (`std::thread::scope`).
//!
//! Synchronisation is delegated to a [`Sched`]: `run_teams` uses the
//! production [`OsSched`] (spin barriers, real concurrency), while
//! [`run_teams_sched`](crate::run_teams_sched) accepts any scheduler —
//! notably the deterministic [`VirtualSched`](crate::VirtualSched) used by
//! the test harness.

use crate::lock::SpinLock;
use crate::partition::chunk_range;
use crate::sched::{OsSched, Sched, SchedPoint};

/// Where a thread sits: its team, its rank within the team, and the
/// scheduler mediating its synchronisation points.
pub struct TeamCtx<'a> {
    /// Index of this thread's team.
    pub team_id: usize,
    /// Rank within the team, `0..team_size`.
    pub rank: usize,
    /// Number of threads in this team.
    pub team_size: usize,
    /// Rank among all threads, `0..n_threads`.
    pub global_rank: usize,
    /// Total number of threads across all teams.
    pub n_threads: usize,
    sched: &'a dyn Sched,
}

impl<'a> TeamCtx<'a> {
    /// Builds a context for one worker. Used by the `run_teams*` entry
    /// points; solver code receives contexts rather than creating them.
    pub(crate) fn new(
        team_id: usize,
        rank: usize,
        team_size: usize,
        global_rank: usize,
        n_threads: usize,
        sched: &'a dyn Sched,
    ) -> Self {
        TeamCtx { team_id, rank, team_size, global_rank, n_threads, sched }
    }

    /// Synchronises the threads of this team (the blue `Sync()` of Fig. 3).
    #[inline]
    pub fn barrier(&self) {
        self.sched.team_barrier(self.global_rank, self.team_id);
    }

    /// Synchronises *all* threads (the red `Sync()` of Fig. 3; used only by
    /// the synchronous variants).
    #[inline]
    pub fn global_barrier(&self) {
        self.sched.global_barrier(self.global_rank);
    }

    /// Announces a scheduling point (racy access or voluntary yield) to the
    /// scheduler. Free under [`OsSched`] except for `Yield`, which maps to
    /// [`std::thread::yield_now`].
    #[inline]
    pub fn sched_point(&self, kind: SchedPoint) {
        self.sched.point(self.global_rank, kind);
    }

    /// Acquires a shared lock through the scheduler. Must be paired with
    /// [`TeamCtx::unlock`] on the same lock.
    #[inline]
    pub fn lock(&self, lock: &SpinLock) {
        self.sched.lock(self.global_rank, lock);
    }

    /// Releases a lock acquired with [`TeamCtx::lock`].
    #[inline]
    pub fn unlock(&self, lock: &SpinLock) {
        self.sched.unlock(self.global_rank, lock);
    }

    /// This thread's static chunk of a loop over `0..n`, split across the
    /// team.
    #[inline]
    pub fn chunk(&self, n: usize) -> std::ops::Range<usize> {
        chunk_range(n, self.team_size, self.rank)
    }

    /// This thread's static chunk of a loop over `0..n`, split across *all*
    /// threads (the `GlobalParFor` of Algorithm 5).
    #[inline]
    pub fn global_chunk(&self, n: usize) -> std::ops::Range<usize> {
        chunk_range(n, self.n_threads, self.global_rank)
    }

    /// Whether this thread is its team's master (rank 0).
    #[inline]
    pub fn is_team_master(&self) -> bool {
        self.rank == 0
    }

    /// Whether this thread is the global master (global rank 0).
    #[inline]
    pub fn is_global_master(&self) -> bool {
        self.global_rank == 0
    }
}

/// Runs `f` on `Σ team_sizes` threads grouped into teams, then joins them.
///
/// `f` receives each thread's [`TeamCtx`]. Panics in any thread propagate.
/// Equivalent to [`run_teams_sched`](crate::run_teams_sched) with an
/// [`OsSched`].
pub fn run_teams<F>(team_sizes: &[usize], f: F)
where
    F: Fn(TeamCtx<'_>) + Sync,
{
    let sched = OsSched::for_teams(team_sizes);
    crate::sched::run_teams_sched(team_sizes, &sched, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_thread_runs_once() {
        let count = AtomicUsize::new(0);
        run_teams(&[2, 3, 1], |ctx| {
            assert!(ctx.rank < ctx.team_size);
            assert!(ctx.global_rank < ctx.n_threads);
            assert_eq!(ctx.n_threads, 6);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn global_ranks_are_unique_and_dense() {
        let seen = [const { AtomicUsize::new(0) }; 5];
        run_teams(&[1, 2, 2], |ctx| {
            seen[ctx.global_rank].fetch_add(1, Ordering::SeqCst);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn team_chunks_tile_iteration_space() {
        let n = 37;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_teams(&[4], |ctx| {
            for i in ctx.chunk(n) {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn global_chunks_tile_across_teams() {
        let n = 23;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_teams(&[2, 3], |ctx| {
            for i in ctx.global_chunk(n) {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn team_barrier_synchronises_only_team() {
        // Two teams progress through different numbers of phases without
        // deadlocking, proving team barriers are independent.
        run_teams(&[2, 2], |ctx| {
            let phases = if ctx.team_id == 0 { 10 } else { 3 };
            for _ in 0..phases {
                ctx.barrier();
            }
        });
    }

    #[test]
    fn masters_identified() {
        let team_masters = AtomicUsize::new(0);
        let global_masters = AtomicUsize::new(0);
        run_teams(&[3, 3], |ctx| {
            if ctx.is_team_master() {
                team_masters.fetch_add(1, Ordering::SeqCst);
            }
            if ctx.is_global_master() {
                global_masters.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(team_masters.load(Ordering::SeqCst), 2);
        assert_eq!(global_masters.load(Ordering::SeqCst), 1);
    }
}
