//! Static loop partitioning and work-proportional thread-to-grid assignment.

/// The `part`-th of `nparts` contiguous chunks of `0..n` (OpenMP static
/// scheduling). Sizes differ by at most one.
pub fn chunk_range(n: usize, nparts: usize, part: usize) -> std::ops::Range<usize> {
    assert!(part < nparts);
    let base = n / nparts;
    let rem = n % nparts;
    let start = part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    start..(start + len).min(n)
}

/// How threads are distributed over the grids of a multigrid hierarchy.
///
/// When there are at least as many threads as grids, every grid gets its own
/// team with a thread count proportional to the grid's work (Section IV of
/// the paper). With fewer threads than grids, consecutive grids share a
/// single-thread team so that every grid still makes progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridTeamLayout {
    /// `teams[t]` is the list of grid indices owned by team `t`
    /// (consecutive, ordered fine → coarse).
    pub teams: Vec<Vec<usize>>,
    /// `sizes[t]` is the number of threads in team `t`.
    pub sizes: Vec<usize>,
}

impl GridTeamLayout {
    /// Builds a layout for `ngrids` grids with per-grid work estimates
    /// `work[k]` (e.g. flops per correction) and `nthreads` threads.
    ///
    /// # Panics
    /// Panics when `ngrids == 0` or `nthreads == 0` or the lengths disagree.
    pub fn build(work: &[f64], nthreads: usize) -> Self {
        let ngrids = work.len();
        assert!(ngrids > 0 && nthreads > 0);
        if nthreads >= ngrids {
            let sizes = proportional_counts(work, nthreads);
            let teams = (0..ngrids).map(|k| vec![k]).collect();
            GridTeamLayout { teams, sizes }
        } else {
            // Fewer threads than grids: group consecutive grids into
            // `nthreads` teams of one thread each, balancing summed work
            // greedily from the fine end (fine grids carry most work).
            let total: f64 = work.iter().sum();
            let target = total / nthreads as f64;
            let mut teams: Vec<Vec<usize>> = Vec::with_capacity(nthreads);
            let mut cur: Vec<usize> = Vec::new();
            let mut acc = 0.0;
            for k in 0..ngrids {
                cur.push(k);
                acc += work[k];
                let remaining_teams = nthreads - teams.len();
                let remaining_grids = ngrids - k - 1;
                // Close the team when it met its target, but never leave
                // fewer grids than teams still to fill.
                if (acc >= target && remaining_teams > 1 && remaining_grids >= remaining_teams - 1)
                    || remaining_grids + 1 == remaining_teams
                {
                    teams.push(std::mem::take(&mut cur));
                    acc = 0.0;
                }
            }
            if !cur.is_empty() {
                teams.push(cur);
            }
            // `teams.len()` can fall short of `nthreads` in degenerate
            // cases (grids are atomic and cannot be split); the layout then
            // simply uses fewer teams.
            let sizes = vec![1; teams.len()];
            GridTeamLayout { teams, sizes }
        }
    }

    /// Total number of threads in the layout.
    pub fn total_threads(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Number of teams.
    pub fn nteams(&self) -> usize {
        self.teams.len()
    }

    /// The team that owns grid `k`.
    pub fn team_of_grid(&self, k: usize) -> usize {
        self.teams.iter().position(|g| g.contains(&k)).expect("grid not owned by any team")
    }
}

/// Splits `nthreads` into integer counts proportional to `work`, every count
/// at least 1 (largest-remainder method).
fn proportional_counts(work: &[f64], nthreads: usize) -> Vec<usize> {
    let n = work.len();
    assert!(nthreads >= n);
    let total: f64 = work.iter().map(|w| w.max(1e-30)).sum();
    let spare = nthreads - n; // one thread reserved per grid
    let mut counts: Vec<usize> = vec![1; n];
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for (k, &w) in work.iter().enumerate() {
        let ideal = w.max(1e-30) / total * spare as f64;
        let floor = ideal.floor() as usize;
        counts[k] += floor;
        assigned += floor;
        fracs.push((ideal - floor as f64, k));
    }
    let mut left = spare - assigned;
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut i = 0;
    while left > 0 {
        counts[fracs[i % n].1] += 1;
        left -= 1;
        i += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_and_are_disjoint() {
        for n in [0usize, 1, 7, 100, 101] {
            for p in [1usize, 2, 3, 7, 16] {
                let mut covered = vec![false; n];
                for part in 0..p {
                    for i in chunk_range(n, p, part) {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} p={p} not covered");
            }
        }
    }

    #[test]
    fn chunk_sizes_balanced() {
        let sizes: Vec<usize> = (0..4).map(|p| chunk_range(10, 4, p).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn proportional_respects_minimum() {
        let counts = proportional_counts(&[1000.0, 10.0, 1.0], 8);
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts.iter().all(|&c| c >= 1));
        assert!(counts[0] > counts[1]);
    }

    #[test]
    fn layout_one_team_per_grid() {
        let layout = GridTeamLayout::build(&[100.0, 25.0, 6.0], 12);
        assert_eq!(layout.nteams(), 3);
        assert_eq!(layout.total_threads(), 12);
        assert_eq!(layout.teams[0], vec![0]);
        assert!(layout.sizes[0] >= layout.sizes[1]);
        assert!(layout.sizes[1] >= layout.sizes[2]);
        assert_eq!(layout.team_of_grid(2), 2);
    }

    #[test]
    fn layout_fewer_threads_than_grids() {
        let layout = GridTeamLayout::build(&[100.0, 25.0, 6.0, 2.0, 1.0], 2);
        assert_eq!(layout.nteams(), 2);
        assert_eq!(layout.total_threads(), 2);
        // Every grid owned exactly once.
        let mut grids: Vec<usize> = layout.teams.iter().flatten().copied().collect();
        grids.sort_unstable();
        assert_eq!(grids, vec![0, 1, 2, 3, 4]);
        // Teams are consecutive grid ranges.
        for team in &layout.teams {
            for w in team.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn layout_threads_equal_grids() {
        let layout = GridTeamLayout::build(&[5.0, 5.0, 5.0], 3);
        assert_eq!(layout.sizes, vec![1, 1, 1]);
        assert_eq!(layout.nteams(), 3);
    }

    #[test]
    fn layout_single_grid() {
        let layout = GridTeamLayout::build(&[42.0], 6);
        assert_eq!(layout.nteams(), 1);
        assert_eq!(layout.sizes, vec![6]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn chunks_always_tile(n in 0usize..500, p in 1usize..32) {
            let mut covered = vec![0u8; n];
            for part in 0..p {
                for i in chunk_range(n, p, part) {
                    covered[i] += 1;
                }
            }
            prop_assert!(covered.iter().all(|&c| c == 1));
        }

        #[test]
        fn chunk_sizes_differ_by_at_most_one(n in 1usize..500, p in 1usize..32) {
            let sizes: Vec<usize> = (0..p).map(|part| chunk_range(n, p, part).len()).collect();
            let lo = sizes.iter().min().unwrap();
            let hi = sizes.iter().max().unwrap();
            prop_assert!(hi - lo <= 1);
        }

        #[test]
        fn layout_conserves_threads_and_grids(
            work in proptest::collection::vec(1.0f64..1000.0, 1..10),
            nthreads in 1usize..64,
        ) {
            let layout = GridTeamLayout::build(&work, nthreads);
            // Every grid owned exactly once.
            let mut grids: Vec<usize> = layout.teams.iter().flatten().copied().collect();
            grids.sort_unstable();
            prop_assert_eq!(grids, (0..work.len()).collect::<Vec<_>>());
            // Thread count preserved when threads >= grids.
            if nthreads >= work.len() {
                prop_assert_eq!(layout.total_threads(), nthreads);
                prop_assert_eq!(layout.nteams(), work.len());
            } else {
                prop_assert!(layout.nteams() <= nthreads);
            }
            // No empty team.
            prop_assert!(layout.teams.iter().all(|t| !t.is_empty()));
            prop_assert!(layout.sizes.iter().all(|&s| s > 0));
        }
    }
}
