//! A bounded lock-free single-producer/single-consumer ring.
//!
//! This is the wire of the sharded execution model: every ordered pair of
//! shard ranks owns one [`SpscRing`], the sending rank pushes from its
//! worker thread, the receiving rank pops from its own, and neither side
//! ever blocks — a full ring rejects the push (the caller counts it as an
//! overflow) and an empty ring returns `None`. The implementation is the
//! classical Lamport queue: a power-of-two slot array indexed by two
//! monotonically increasing counters, `head` advanced only by the consumer
//! and `tail` only by the producer, with release/acquire ordering so a slot
//! write happens-before the counter increment that publishes it.
//!
//! # Contract
//!
//! Like [`RacyVec`](crate::RacyVec), safety is by caller discipline rather
//! than by type-level ownership: [`SpscRing`] is `Sync`, but at most one
//! thread may call [`SpscRing::push`] and at most one (possibly different)
//! thread may call [`SpscRing::pop`] at any point in time. The sharded
//! transport upholds this by construction — rank `s` is the only pusher of
//! ring `(s, t)` and rank `t` its only popper. Concurrent pushes (or
//! concurrent pops) from two threads are undefined behaviour.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded lock-free SPSC queue of `T`.
///
/// See the module docs for the single-producer/single-consumer contract.
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Capacity mask (`slots.len() - 1`; the length is a power of two).
    mask: usize,
    /// Next slot the consumer reads. Only the consumer advances this.
    head: AtomicUsize,
    /// Next slot the producer writes. Only the producer advances this.
    tail: AtomicUsize,
}

// SAFETY: the single-producer/single-consumer contract (module docs) makes
// every slot access exclusive: a slot is written only while it is invisible
// to the consumer (tail not yet published) and read only after the
// release-store of `tail` made the write visible, and never reused before
// the consumer's release-store of `head`.
unsafe impl<T: Send> Sync for SpscRing<T> {}
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring holding at least `capacity` elements (rounded up to the next
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
        SpscRing { slots, mask: cap - 1, head: AtomicUsize::new(0), tail: AtomicUsize::new(0) }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes `v`, or returns it back if the ring is full. Producer-side
    /// only (see the contract).
    pub fn push(&self, v: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.slots.len() {
            return Err(v);
        }
        // SAFETY: `tail` is unpublished, so the consumer cannot touch this
        // slot, and the producer contract rules out a concurrent push.
        unsafe { (*self.slots[tail & self.mask].get()).write(v) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pops the oldest element, or `None` if the ring is empty. Never
    /// blocks. Consumer-side only (see the contract).
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the acquire-load of `tail` ordered us after the slot
        // write, and the consumer contract rules out a concurrent pop; the
        // slot holds an initialised value that is read exactly once.
        let v = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Number of queued elements (approximate under concurrency; exact when
    /// the ring is quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// `true` when no element is queued (same caveat as [`SpscRing::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Exclusive access: drain whatever the consumer left behind.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let ring = SpscRing::with_capacity(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            assert!(ring.push(i).is_ok());
        }
        assert_eq!(ring.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let ring = SpscRing::with_capacity(2);
        for round in 0..1000 {
            assert!(ring.push(round).is_ok());
            assert!(ring.push(round + 1).is_ok());
            assert_eq!(ring.pop(), Some(round));
            assert_eq!(ring.pop(), Some(round + 1));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn concurrent_producer_consumer_preserves_stream() {
        let ring = Arc::new(SpscRing::with_capacity(8));
        let n = 10_000u64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                while sent < n {
                    if ring.push(sent).is_ok() {
                        sent += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut expect = 0u64;
        while expect < n {
            if let Some(v) = ring.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(ring.is_empty());
    }

    #[test]
    fn drops_leftover_elements() {
        // A type with a drop side effect to confirm leftovers are released.
        let ring = SpscRing::with_capacity(4);
        ring.push(Arc::new(7)).unwrap();
        ring.push(Arc::new(8)).unwrap();
        let held = Arc::new(9);
        ring.push(Arc::clone(&held)).unwrap();
        drop(ring);
        assert_eq!(Arc::strong_count(&held), 1);
    }
}
