//! A reusable sense-reversing spin barrier.
//!
//! The barrier spins briefly and then yields to the OS scheduler, which keeps
//! it correct and reasonably fast even when threads are heavily
//! oversubscribed (the reproduction environment has more threads than
//! cores, like the paper's 272-thread KNL runs on 68 cores).

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable barrier for a fixed set of threads.
///
/// `wait` provides Acquire/Release synchronisation: all writes performed by
/// any participant before the barrier are visible to every participant after
/// it — exactly the guarantee OpenMP's implicit barriers give, and the
/// guarantee the blocking parallel loops of the paper's Algorithm 5 rely on.
pub struct SpinBarrier {
    num: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `num` threads. `num == 0` is treated as 1.
    pub fn new(num: usize) -> Self {
        SpinBarrier { num: num.max(1), count: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.num
    }

    /// Blocks until all `num` threads have called `wait`.
    pub fn wait(&self) {
        if self.num == 1 {
            // Still need to order memory for the single-threaded degenerate
            // case used in tests; a fence is enough.
            std::sync::atomic::fence(Ordering::AcqRel);
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.num {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscription-friendly: give the core away so the
                    // laggard can run.
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_is_noop() {
        let b = SpinBarrier::new(1);
        b.wait();
        b.wait();
    }

    #[test]
    fn orders_phases() {
        // Each thread increments a phase counter; after every barrier all
        // participants must observe the same phase count.
        let n = 4;
        let b = Arc::new(SpinBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for phase in 1..=20usize {
                    c.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    let seen = c.load(Ordering::SeqCst);
                    assert_eq!(seen, phase * n, "phase {phase}");
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn reusable_many_times() {
        let n = 3;
        let b = Arc::new(SpinBarrier::new(n));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn zero_participants_clamped() {
        let b = SpinBarrier::new(0);
        assert_eq!(b.participants(), 1);
        b.wait();
    }
}
