//! Clock abstraction for every time-based solver decision.
//!
//! The watchdog's wall-clock budget (`max_wall`), stall windows
//! (`max_stall`) and the resilience session's backoff/deadline arithmetic
//! all need *a* notion of elapsed time — but reading `Instant::now()`
//! directly makes those paths untestable under the deterministic
//! [`VirtualSched`](crate::VirtualSched): a test would have to really sleep
//! out a 50 ms budget, and the moment the timeout fires would still be racy.
//!
//! [`Clock`] routes every such read and sleep through a trait object:
//!
//! * [`OsClock`] — production: monotonic `Instant` reads and real
//!   `thread::sleep`. The default everywhere, bit-identical to the
//!   pre-abstraction behaviour.
//! * [`VirtualClock`] — testing: a monotonic atomic nanosecond counter that
//!   only advances when someone *sleeps on it* (or calls
//!   [`VirtualClock::advance`]). A watchdog polling on a virtual clock
//!   burns no wall-clock time at all, and a 60-second virtual budget
//!   expires after a deterministic number of poll slices.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic clock plus the ability to wait on it.
///
/// `now_ns` is nanoseconds since an arbitrary per-clock epoch (callers
/// compare differences, never absolute values). `sleep` blocks the calling
/// thread for `d` of *this clock's* time — which for a virtual clock means
/// advancing the counter and returning immediately.
pub trait Clock: Sync {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;

    /// Waits `d` of this clock's time.
    fn sleep(&self, d: Duration);
}

/// The production clock: monotonic OS time and real sleeps.
pub struct OsClock {
    epoch: Instant,
}

impl OsClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        OsClock { epoch: Instant::now() }
    }
}

impl Default for OsClock {
    fn default() -> Self {
        OsClock::new()
    }
}

impl Clock for OsClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic clock: time is an atomic counter that advances only
/// through [`Clock::sleep`] or [`VirtualClock::advance`].
///
/// Sleeping on a virtual clock never blocks, so a test that exercises a
/// 60-second watchdog budget finishes in microseconds. When a single
/// thread owns all sleeps (the resilience session between attempts), every
/// `now_ns` reading is a pure function of the calls made so far — which is
/// what makes session backoff and deadline splitting replay bit-identically.
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        VirtualClock { nanos: AtomicU64::new(0) }
    }

    /// Advances the clock by `d` without sleeping.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::AcqRel);
    }

    /// The current virtual time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.now_ns())
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.nanos.load(Ordering::Acquire)
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_clock_is_monotonic() {
        let c = OsClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_told() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        let t0 = Instant::now();
        c.sleep(Duration::from_secs(3600));
        // An hour of virtual sleep costs no wall-clock time.
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(c.now_ns(), 3600 * 1_000_000_000);
        c.advance(Duration::from_nanos(5));
        assert_eq!(c.now_ns(), 3600 * 1_000_000_000 + 5);
        assert_eq!(c.elapsed(), Duration::from_nanos(3600 * 1_000_000_000 + 5));
    }

    #[test]
    fn clocks_work_through_dyn_dispatch() {
        let v = VirtualClock::new();
        let c: &dyn Clock = &v;
        c.sleep(Duration::from_millis(2));
        assert_eq!(c.now_ns(), 2_000_000);
    }
}
