//! Schedule abstraction: where team workers touch real concurrency.
//!
//! The solvers of `asyncmg-core` interact with the outside world at a small
//! set of *scheduling points*: team and global barriers, acquisition of the
//! shared-write locks, racy reads/writes of the shared vectors, and the
//! voluntary yield between corrections. [`Sched`] abstracts exactly those
//! points, so the same solver code can run in two worlds:
//!
//! * [`OsSched`] — the production world. Barriers are [`SpinBarrier`]s,
//!   locks spin, yields call [`std::thread::yield_now`], and racy
//!   read/write points cost nothing. This is bit-for-bit the behaviour the
//!   solvers had before the abstraction existed.
//! * [`VirtualSched`] — the testing world. All workers still run on their
//!   own OS threads, but the scheduler admits **exactly one at a time**:
//!   every scheduling point hands control back to a seeded PRNG that picks
//!   the next runnable worker. The execution is logically single-threaded
//!   and therefore *deterministic*: the same seed replays the same
//!   interleaving, the same floating-point operation order, and the same
//!   telemetry event stream. A bounded-delay model (the paper's `δ`) can be
//!   injected at racy-read points by descheduling the reader for up to
//!   `max_steps` scheduling decisions.
//!
//! The virtual scheduler also turns liveness bugs into diagnostics: if no
//! worker is runnable and none is delayed, it panics with a dump of every
//! worker's wait state instead of hanging the test suite.

use crate::barrier::SpinBarrier;
use crate::lock::SpinLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Condvar, Mutex, MutexGuard};

/// What kind of scheduling point a worker reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPoint {
    /// The worker is about to read racy shared state (a snapshot of the
    /// shared iterate or residual). Delay injection targets these points.
    RacyRead,
    /// The worker is about to write racy shared state.
    RacyWrite,
    /// A voluntary end-of-correction yield.
    Yield,
}

/// The points where team workers touch real concurrency.
///
/// Implementations must be callable from every worker thread. The `worker`
/// argument is always the caller's global rank.
pub trait Sched: Sync {
    /// Called once by [`run_teams_sched`] before any worker starts.
    fn launch(&self, team_sizes: &[usize]);

    /// Called by worker `worker` before its closure body runs.
    fn worker_start(&self, worker: usize);

    /// Called after worker `worker`'s closure returns (or unwinds, with
    /// `panicked` set).
    fn worker_exit(&self, worker: usize, panicked: bool);

    /// Synchronises the workers of team `team`.
    fn team_barrier(&self, worker: usize, team: usize);

    /// Synchronises *all* workers.
    fn global_barrier(&self, worker: usize);

    /// A non-blocking scheduling point (racy access or voluntary yield).
    fn point(&self, worker: usize, kind: SchedPoint);

    /// Acquires a shared lock. Schedulers mediate this so a descheduled
    /// lock holder cannot livelock a spinning waiter.
    fn lock(&self, worker: usize, lock: &SpinLock);

    /// Releases a shared lock previously acquired through [`Sched::lock`].
    fn unlock(&self, worker: usize, lock: &SpinLock);
}

/// The production scheduler: real threads, spin barriers, spin locks.
///
/// Behaviour is identical to the pre-[`Sched`] runtime: team and global
/// barriers are [`SpinBarrier`]s sized at construction, racy points are
/// no-ops, and [`SchedPoint::Yield`] maps to [`std::thread::yield_now`].
pub struct OsSched {
    sizes: Vec<usize>,
    team_barriers: Vec<SpinBarrier>,
    global_barrier: SpinBarrier,
}

impl OsSched {
    /// A scheduler for teams of the given sizes.
    pub fn for_teams(team_sizes: &[usize]) -> Self {
        OsSched {
            sizes: team_sizes.to_vec(),
            team_barriers: team_sizes.iter().map(|&s| SpinBarrier::new(s)).collect(),
            global_barrier: SpinBarrier::new(team_sizes.iter().sum()),
        }
    }
}

impl Sched for OsSched {
    fn launch(&self, team_sizes: &[usize]) {
        assert_eq!(team_sizes, &self.sizes[..], "OsSched built for different team sizes");
    }

    fn worker_start(&self, _worker: usize) {}

    fn worker_exit(&self, _worker: usize, _panicked: bool) {}

    #[inline]
    fn team_barrier(&self, _worker: usize, team: usize) {
        self.team_barriers[team].wait();
    }

    #[inline]
    fn global_barrier(&self, _worker: usize) {
        self.global_barrier.wait();
    }

    #[inline]
    fn point(&self, _worker: usize, kind: SchedPoint) {
        if kind == SchedPoint::Yield {
            std::thread::yield_now();
        }
    }

    #[inline]
    fn lock(&self, _worker: usize, lock: &SpinLock) {
        lock.lock();
    }

    #[inline]
    fn unlock(&self, _worker: usize, lock: &SpinLock) {
        lock.unlock();
    }
}

/// Bounded-delay injection at racy-read points (the paper's `δ` model,
/// applied to the implementation instead of the sequential simulation).
#[derive(Clone, Copy, Debug)]
pub struct ReadDelay {
    /// Probability that a racy read is delayed at all.
    pub prob: f64,
    /// Maximum delay in scheduling decisions (`δ`): a delayed reader is
    /// descheduled for `1..=max_steps` decisions, so the data it then reads
    /// is at most that many decisions stale.
    pub max_steps: u64,
}

/// A worker's scheduling status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Not yet arrived at `worker_start`.
    NotStarted,
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting at the team barrier of the given team.
    TeamWait(usize),
    /// Waiting at the global barrier.
    GlobalWait,
    /// Waiting for the lock with the given address to be released.
    LockWait(usize),
    /// Descheduled until the decision counter reaches the given step.
    Delayed(u64),
    /// The worker's closure returned.
    Done,
}

struct VState {
    rng: StdRng,
    sizes: Vec<usize>,
    team_of: Vec<usize>,
    status: Vec<Status>,
    team_arrived: Vec<usize>,
    global_arrived: usize,
    started: usize,
    current: Option<usize>,
    step: u64,
    poisoned: bool,
    launched: bool,
    held_locks: Vec<usize>,
    log: Vec<u32>,
}

/// A deterministic virtual scheduler.
///
/// Workers still run on OS threads, but at most one is admitted at any
/// instant; at every scheduling point the next runnable worker is chosen by
/// a PRNG seeded at construction. Identical seeds therefore replay
/// bit-identical executions — interleaving, floating-point results and
/// telemetry event content (wall-clock timestamps excepted) — regardless of
/// core count or OS scheduling.
///
/// A `VirtualSched` drives **one** launch: the PRNG stream spans the whole
/// object, so reuse would continue the stream rather than replay it.
/// Create a fresh instance per run when reproducibility matters.
///
/// Solvers whose tolerance monitor runs outside the team (asynchronous
/// `StopCriterion::Tolerance`) remain nondeterministic under this scheduler:
/// the monitor thread is not a team worker and is not gated. Use the
/// count-based criteria for deterministic runs.
pub struct VirtualSched {
    state: Mutex<VState>,
    cv: Condvar,
    /// Immutable after construction; read on the racy-read path.
    delay: Option<ReadDelay>,
}

impl VirtualSched {
    /// A scheduler replaying the interleaving identified by `seed`, without
    /// delay injection.
    pub fn new(seed: u64) -> Self {
        Self::build(seed, None)
    }

    /// A scheduler that additionally injects bounded read delays.
    pub fn with_delay(seed: u64, delay: ReadDelay) -> Self {
        assert!((0.0..=1.0).contains(&delay.prob), "delay prob out of [0,1]");
        assert!(delay.max_steps > 0, "zero-step delay");
        Self::build(seed, Some(delay))
    }

    fn build(seed: u64, delay: Option<ReadDelay>) -> Self {
        VirtualSched {
            state: Mutex::new(VState {
                rng: StdRng::seed_from_u64(seed),
                sizes: Vec::new(),
                team_of: Vec::new(),
                status: Vec::new(),
                team_arrived: Vec::new(),
                global_arrived: 0,
                started: 0,
                current: None,
                step: 0,
                poisoned: false,
                launched: false,
                held_locks: Vec::new(),
                log: Vec::new(),
            }),
            cv: Condvar::new(),
            delay,
        }
    }

    /// `true` if delay injection is configured.
    pub fn has_delay(&self) -> bool {
        self.delay.is_some()
    }

    /// The sequence of scheduling decisions made so far (worker global
    /// ranks, in decision order). Two runs interleave identically if and
    /// only if their decision sequences are equal.
    pub fn decisions(&self) -> Vec<u32> {
        self.guard().log.clone()
    }

    /// Number of scheduling decisions made so far.
    pub fn steps(&self) -> u64 {
        self.guard().step
    }

    fn guard(&self) -> MutexGuard<'_, VState> {
        // The poisoned flag, not mutex poisoning, is the error channel: a
        // worker that panics poisons the schedule explicitly in
        // `worker_exit`, and every waiter re-panics from `wait_until_mine`.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Picks the next worker to run, waking delayed workers (advancing the
    /// virtual step counter when everyone is delayed) and detecting
    /// deadlock.
    fn pick_next(&self, st: &mut VState) {
        loop {
            let runnable: Vec<usize> =
                (0..st.status.len()).filter(|&w| st.status[w] == Status::Runnable).collect();
            if !runnable.is_empty() {
                let pick = if runnable.len() == 1 {
                    runnable[0]
                } else {
                    runnable[st.rng.gen_range(0..runnable.len())]
                };
                st.current = Some(pick);
                st.step += 1;
                st.log.push(pick as u32);
                self.cv.notify_all();
                return;
            }
            // Nobody is runnable: wake delayed workers, jumping the step
            // counter forward when every live worker is delayed.
            let min_until = st
                .status
                .iter()
                .filter_map(|s| match s {
                    Status::Delayed(until) => Some(*until),
                    _ => None,
                })
                .min();
            if let Some(until) = min_until {
                st.step = st.step.max(until);
                let step = st.step;
                for s in st.status.iter_mut() {
                    if matches!(s, Status::Delayed(u) if *u <= step) {
                        *s = Status::Runnable;
                    }
                }
                continue;
            }
            if st.status.iter().all(|&s| s == Status::Done) {
                st.current = None;
                self.cv.notify_all();
                return;
            }
            // Workers are stuck on barriers or locks with nobody to free
            // them: a real deadlock in the code under test.
            st.poisoned = true;
            let dump: Vec<String> =
                st.status.iter().enumerate().map(|(w, s)| format!("worker {w}: {s:?}")).collect();
            self.cv.notify_all();
            panic!("VirtualSched deadlock after {} decisions:\n  {}", st.step, dump.join("\n  "));
        }
    }

    /// Blocks the calling worker until it is the scheduled one.
    fn wait_until_mine<'a>(
        &'a self,
        mut st: MutexGuard<'a, VState>,
        worker: usize,
    ) -> MutexGuard<'a, VState> {
        loop {
            if st.poisoned {
                drop(st);
                panic!("VirtualSched schedule poisoned by another worker's panic");
            }
            if st.current == Some(worker) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Applies a status change for `worker`, schedules the next worker, and
    /// blocks until `worker` is scheduled again.
    fn reschedule(&self, worker: usize, set: impl FnOnce(&mut VState)) {
        let mut st = self.guard();
        set(&mut st);
        self.pick_next(&mut st);
        let _st = self.wait_until_mine(st, worker);
    }
}

impl Sched for VirtualSched {
    fn launch(&self, team_sizes: &[usize]) {
        let n: usize = team_sizes.iter().sum();
        let mut st = self.guard();
        assert!(!st.launched, "VirtualSched drives a single launch; create a new one per run");
        st.launched = true;
        st.sizes = team_sizes.to_vec();
        st.team_of =
            team_sizes.iter().enumerate().flat_map(|(t, &s)| std::iter::repeat_n(t, s)).collect();
        st.status = vec![Status::NotStarted; n];
        st.team_arrived = vec![0; team_sizes.len()];
        st.global_arrived = 0;
    }

    fn worker_start(&self, worker: usize) {
        let mut st = self.guard();
        st.status[worker] = Status::Runnable;
        st.started += 1;
        // Nobody runs until every worker has checked in, so the first
        // scheduling decision sees the full worker set no matter how the OS
        // staggers thread spawning.
        if st.started == st.status.len() {
            self.pick_next(&mut st);
        }
        let _st = self.wait_until_mine(st, worker);
    }

    fn worker_exit(&self, worker: usize, panicked: bool) {
        let mut st = self.guard();
        if panicked {
            st.poisoned = true;
            self.cv.notify_all();
            return;
        }
        st.status[worker] = Status::Done;
        st.current = None;
        self.pick_next(&mut st);
    }

    fn team_barrier(&self, worker: usize, team: usize) {
        let mut st = self.guard();
        st.team_arrived[team] += 1;
        if st.team_arrived[team] == st.sizes[team] {
            st.team_arrived[team] = 0;
            for w in 0..st.status.len() {
                if st.team_of[w] == team && st.status[w] == Status::TeamWait(team) {
                    st.status[w] = Status::Runnable;
                }
            }
            st.status[worker] = Status::Runnable;
        } else {
            st.status[worker] = Status::TeamWait(team);
        }
        self.pick_next(&mut st);
        let _st = self.wait_until_mine(st, worker);
    }

    fn global_barrier(&self, worker: usize) {
        let mut st = self.guard();
        st.global_arrived += 1;
        if st.global_arrived == st.status.len() {
            st.global_arrived = 0;
            for s in st.status.iter_mut() {
                if *s == Status::GlobalWait {
                    *s = Status::Runnable;
                }
            }
            st.status[worker] = Status::Runnable;
        } else {
            st.status[worker] = Status::GlobalWait;
        }
        self.pick_next(&mut st);
        let _st = self.wait_until_mine(st, worker);
    }

    fn point(&self, worker: usize, kind: SchedPoint) {
        let delay = self.delay;
        self.reschedule(worker, |st| {
            st.status[worker] = Status::Runnable;
            if kind == SchedPoint::RacyRead {
                if let Some(d) = delay {
                    if st.rng.gen_bool(d.prob) {
                        let until = st.step + 1 + st.rng.gen_range(0..d.max_steps);
                        st.status[worker] = Status::Delayed(until);
                    }
                }
            }
        });
    }

    fn lock(&self, worker: usize, lock: &SpinLock) {
        let addr = lock as *const SpinLock as usize;
        // Acquisition is itself a preemption point: another worker may be
        // scheduled (and may take the lock) before this one proceeds.
        self.reschedule(worker, |st| st.status[worker] = Status::Runnable);
        loop {
            let mut st = self.guard();
            if !st.held_locks.contains(&addr) {
                st.held_locks.push(addr);
                return;
            }
            st.status[worker] = Status::LockWait(addr);
            self.pick_next(&mut st);
            let _st = self.wait_until_mine(st, worker);
            // Scheduled again after a release; retry (another worker may
            // have re-acquired in between).
        }
    }

    fn unlock(&self, worker: usize, lock: &SpinLock) {
        let addr = lock as *const SpinLock as usize;
        let mut st = self.guard();
        let pos = st.held_locks.iter().position(|&a| a == addr).expect("unlock of unheld lock");
        st.held_locks.swap_remove(pos);
        for s in st.status.iter_mut() {
            if *s == Status::LockWait(addr) {
                *s = Status::Runnable;
            }
        }
        let _ = worker;
        // No reschedule: releasing is not a read of shared state, and the
        // caller continues deterministically to its next scheduling point.
    }
}

/// Joins workers to the scheduler for the duration of the closure, marking
/// the exit even on unwind so a panicking worker cannot hang the others.
struct WorkerGuard<'a> {
    sched: &'a dyn Sched,
    worker: usize,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.sched.worker_exit(self.worker, std::thread::panicking());
    }
}

/// [`crate::run_teams`] generalised over a [`Sched`]: runs `f` on
/// `Σ team_sizes` threads grouped into teams under the given scheduler,
/// then joins them. Panics in any worker propagate.
pub fn run_teams_sched<F>(team_sizes: &[usize], sched: &dyn Sched, f: F)
where
    F: Fn(crate::team::TeamCtx<'_>) + Sync,
{
    assert!(!team_sizes.is_empty());
    assert!(team_sizes.iter().all(|&s| s > 0), "empty team");
    let n_threads: usize = team_sizes.iter().sum();
    sched.launch(team_sizes);
    std::thread::scope(|scope| {
        let mut global_rank = 0usize;
        for (team_id, &size) in team_sizes.iter().enumerate() {
            for rank in 0..size {
                let ctx =
                    crate::team::TeamCtx::new(team_id, rank, size, global_rank, n_threads, sched);
                let f = &f;
                scope.spawn(move || {
                    let worker = ctx.global_rank;
                    sched.worker_start(worker);
                    let _guard = WorkerGuard { sched, worker };
                    f(ctx);
                });
                global_rank += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A small racy workload: each worker appends its rank to a shared log
    /// at every scheduling point, so the log *is* the interleaving.
    fn run_logged(sched: &VirtualSched, team_sizes: &[usize], rounds: usize) -> Vec<usize> {
        let log = Mutex::new(Vec::new());
        run_teams_sched(team_sizes, sched, |ctx| {
            for _ in 0..rounds {
                ctx.sched_point(SchedPoint::RacyRead);
                log.lock().unwrap().push(ctx.global_rank);
                ctx.sched_point(SchedPoint::Yield);
            }
            ctx.barrier();
        });
        log.into_inner().unwrap()
    }

    #[test]
    fn virtual_runs_every_worker() {
        let count = AtomicUsize::new(0);
        let sched = VirtualSched::new(1);
        run_teams_sched(&[2, 3], &sched, |ctx| {
            assert_eq!(ctx.n_threads, 5);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn same_seed_replays_identical_interleaving() {
        let s1 = VirtualSched::new(42);
        let s2 = VirtualSched::new(42);
        let log1 = run_logged(&s1, &[2, 2], 8);
        let log2 = run_logged(&s2, &[2, 2], 8);
        assert_eq!(log1, log2);
        assert_eq!(s1.decisions(), s2.decisions());
        assert!(s1.steps() > 0);
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        let base = {
            let s = VirtualSched::new(0);
            run_logged(&s, &[2, 2], 8);
            s.decisions()
        };
        let any_differs = (1..8u64).any(|seed| {
            let s = VirtualSched::new(seed);
            run_logged(&s, &[2, 2], 8);
            s.decisions() != base
        });
        assert!(any_differs, "8 seeds produced identical schedules");
    }

    #[test]
    fn delay_injection_stays_deterministic() {
        let d = ReadDelay { prob: 0.5, max_steps: 6 };
        let s1 = VirtualSched::with_delay(9, d);
        let s2 = VirtualSched::with_delay(9, d);
        assert_eq!(run_logged(&s1, &[3], 10), run_logged(&s2, &[3], 10));
        assert_eq!(s1.decisions(), s2.decisions());
    }

    #[test]
    fn virtual_barriers_and_global_barriers_synchronise() {
        // Phase counter: within each phase every worker must observe the
        // same value, which only holds if the barrier is honoured.
        let phase = AtomicUsize::new(0);
        let sched = VirtualSched::new(7);
        run_teams_sched(&[2, 2], &sched, |ctx| {
            for p in 0..5 {
                assert_eq!(phase.load(Ordering::SeqCst), p);
                ctx.global_barrier();
                if ctx.is_global_master() {
                    phase.fetch_add(1, Ordering::SeqCst);
                }
                ctx.global_barrier();
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn virtual_lock_is_mutually_exclusive() {
        // The critical section spans scheduling points; without lock
        // mediation two workers would interleave inside it.
        let lock = SpinLock::new();
        let inside = AtomicUsize::new(0);
        let sched = VirtualSched::new(3);
        run_teams_sched(&[4], &sched, |ctx| {
            for _ in 0..6 {
                ctx.lock(&lock);
                assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                ctx.sched_point(SchedPoint::Yield);
                assert_eq!(inside.fetch_sub(1, Ordering::SeqCst), 1);
                ctx.unlock(&lock);
                ctx.sched_point(SchedPoint::Yield);
            }
        });
    }

    #[test]
    #[should_panic]
    fn virtual_detects_deadlock() {
        // Worker 0 waits at the team barrier; worker 1 exits without ever
        // arriving. Under OsSched this would hang; VirtualSched panics.
        let sched = VirtualSched::new(0);
        run_teams_sched(&[2], &sched, |ctx| {
            if ctx.rank == 0 {
                ctx.barrier();
            }
        });
    }

    #[test]
    fn os_sched_runs_same_closures() {
        let count = AtomicUsize::new(0);
        let sched = OsSched::for_teams(&[2, 1]);
        run_teams_sched(&[2, 1], &sched, |ctx| {
            ctx.sched_point(SchedPoint::RacyRead);
            ctx.sched_point(SchedPoint::RacyWrite);
            ctx.sched_point(SchedPoint::Yield);
            ctx.barrier();
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }
}
