#!/usr/bin/env bash
# Snapshot the workspace's public API surface.
#
# Emits every `pub fn|struct|enum|trait|type|const|mod|use` line under
# crates/*/src (crate-relative path + normalized declaration), sorted, to
# stdout. The committed snapshot lives at docs/api_surface.txt; CI diffs a
# fresh run against it so any surface change must arrive with a matching
# snapshot update:
#
#   tools/api_surface.sh > docs/api_surface.txt
#
# This is a line-oriented approximation, not a semantic one (cargo-public-api
# needs network): bodies, generics spanning lines, and macro-generated items
# are out of scope. It still pins the names — which is what the v1 stability
# promise is about.
set -euo pipefail
cd "$(dirname "$0")/.."

grep -rnE '^[[:space:]]*pub (fn|struct|enum|trait|type|const|mod|use) ' \
    crates/*/src --include='*.rs' |
    # Drop test modules' items and strip line numbers + trailing bodies.
    grep -v '/tests\.rs:' |
    sed -E 's/:[0-9]+:/: /; s/^[[:space:]]*//; s/[[:space:]]*\{.*$//; s/[[:space:]]+/ /g' |
    LC_ALL=C sort
