#!/usr/bin/env sh
# Measure this host's kernel crossovers and write the calibration cache
# that drives KernelSelect::Auto and auto_setup_threads.
#
#   tools/calibrate.sh            # measure + save
#   tools/calibrate.sh --show     # print the cache without measuring
#
# See docs/performance.md ("Kernel selection and host calibration").
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p asyncmg-bench --bin calibrate -- "$@"
