//! Property-based tests (proptest) on the core data structures and solver
//! invariants.
#![allow(clippy::needless_range_loop)]

use asyncmg_amg::{build_hierarchy, AmgOptions, Coarsening};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_sparse::{rap, spgemm, Coo, Csr};
use proptest::prelude::*;

/// A random diagonally dominant SPD-ish sparse matrix.
fn dd_matrix(n: usize, entries: &[(usize, usize, f64)]) -> Csr {
    let mut coo = Coo::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for &(i, j, v) in entries {
        let (i, j) = (i % n, j % n);
        if i != j {
            let v = -(v.abs());
            coo.push(i, j, v);
            coo.push(j, i, v);
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for i in 0..n {
        coo.push(i, i, row_sums[i] + 1.0);
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transpose_is_involutive(
        entries in prop::collection::vec((0usize..30, 0usize..30, -5.0f64..5.0), 1..120)
    ) {
        let a = dd_matrix(30, &entries);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmv_is_linear(
        entries in prop::collection::vec((0usize..20, 0usize..20, -3.0f64..3.0), 1..60),
        x in prop::collection::vec(-10.0f64..10.0, 20),
        y in prop::collection::vec(-10.0f64..10.0, 20),
        c in -4.0f64..4.0,
    ) {
        let a = dd_matrix(20, &entries);
        let mut ax = vec![0.0; 20];
        let mut ay = vec![0.0; 20];
        a.spmv(&x, &mut ax);
        a.spmv(&y, &mut ay);
        let z: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| c * xi + yi).collect();
        let mut az = vec![0.0; 20];
        a.spmv(&z, &mut az);
        for i in 0..20 {
            let expect = c * ax[i] + ay[i];
            prop_assert!((az[i] - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn spgemm_associates_with_spmv(
        entries in prop::collection::vec((0usize..15, 0usize..15, -3.0f64..3.0), 1..50),
        x in prop::collection::vec(-5.0f64..5.0, 15),
    ) {
        // (A·A) x == A (A x)
        let a = dd_matrix(15, &entries);
        let aa = spgemm(&a, &a);
        let mut ax = vec![0.0; 15];
        a.spmv(&x, &mut ax);
        let mut aax = vec![0.0; 15];
        a.spmv(&ax, &mut aax);
        let mut aax2 = vec![0.0; 15];
        aa.spmv(&x, &mut aax2);
        for i in 0..15 {
            prop_assert!((aax[i] - aax2[i]).abs() < 1e-8 * (1.0 + aax[i].abs()));
        }
    }

    #[test]
    fn rap_is_symmetric_for_random_dd_matrices(
        entries in prop::collection::vec((0usize..24, 0usize..24, -3.0f64..3.0), 10..100)
    ) {
        let a = dd_matrix(24, &entries);
        let s = asyncmg_amg::classical_strength(&a, 0.25);
        let cf = asyncmg_amg::coarsen::coarsen(&s, Coarsening::Hmis, 1);
        let nc = asyncmg_amg::coarsen::n_coarse(&cf);
        prop_assume!(nc > 0 && nc < 24);
        let p = asyncmg_amg::interp::build_interpolation(
            &a, &s, &cf, asyncmg_amg::Interpolation::ClassicalModified, 0.0);
        let ac = rap(&a, &p);
        prop_assert!(ac.is_symmetric(1e-9));
        prop_assert_eq!(ac.nrows(), nc);
    }

    #[test]
    fn hierarchy_always_terminates_and_shrinks(
        entries in prop::collection::vec((0usize..40, 0usize..40, -3.0f64..3.0), 30..200)
    ) {
        let a = dd_matrix(40, &entries);
        let h = build_hierarchy(a, &AmgOptions { max_coarse: 8, ..Default::default() });
        let sizes = h.level_sizes();
        for w in sizes.windows(2) {
            prop_assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn mult_reduces_residual_on_random_dd_systems(
        entries in prop::collection::vec((0usize..30, 0usize..30, -3.0f64..3.0), 20..150),
        bvec in prop::collection::vec(-1.0f64..1.0, 30),
    ) {
        let a = dd_matrix(30, &entries);
        let h = build_hierarchy(a, &AmgOptions { max_coarse: 8, ..Default::default() });
        let s = MgSetup::new(h, MgOptions::default());
        let res =
            asyncmg_core::mult::solve_mult_probed(&s, &bvec, 15, None, &asyncmg_core::NoopProbe);
        // Diagonally dominant + damped Jacobi ⇒ convergent cycle.
        prop_assert!(res.final_relres() < 0.9, "relres {}", res.final_relres());
    }

    #[test]
    fn dense_lu_solves_random_dd_systems(
        entries in prop::collection::vec((0usize..12, 0usize..12, -3.0f64..3.0), 5..60),
        xs in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let a = dd_matrix(12, &entries);
        let lu = asyncmg_sparse::DenseLu::factor(&a).expect("dd matrix nonsingular");
        let mut b = vec![0.0; 12];
        a.spmv(&xs, &mut b);
        let got = lu.solve_vec(&b);
        for i in 0..12 {
            prop_assert!((got[i] - xs[i]).abs() < 1e-7 * (1.0 + xs[i].abs()));
        }
    }

    #[test]
    fn interpolation_rows_bounded_and_c_rows_identity(
        entries in prop::collection::vec((0usize..25, 0usize..25, -3.0f64..3.0), 20..120)
    ) {
        let a = dd_matrix(25, &entries);
        let s = asyncmg_amg::classical_strength(&a, 0.25);
        let cf = asyncmg_amg::coarsen::coarsen(&s, Coarsening::Pmis, 2);
        let nc = asyncmg_amg::coarsen::n_coarse(&cf);
        prop_assume!(nc > 0);
        let p = asyncmg_amg::interp::build_interpolation(
            &a, &s, &cf, asyncmg_amg::Interpolation::ClassicalModified, 0.0);
        let (cmap, _) = asyncmg_amg::interp::coarse_map(&cf);
        for i in 0..25 {
            if cf[i] == asyncmg_amg::Cf::C {
                let (cols, vals) = p.row(i);
                prop_assert_eq!(cols, &[cmap[i]][..]);
                prop_assert_eq!(vals, &[1.0][..]);
            } else {
                // Diagonally dominant rows give bounded weights.
                for v in p.row(i).1 {
                    prop_assert!(v.abs() < 10.0, "weight {v}");
                }
            }
        }
    }
}
