//! Property-based tests (proptest) on the core data structures and solver
//! invariants.
#![allow(clippy::needless_range_loop)]

use asyncmg_amg::{build_hierarchy, AmgOptions, Coarsening};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_sparse::{rap, spgemm, Coo, Csr};
use proptest::prelude::*;

/// A random diagonally dominant SPD-ish sparse matrix.
fn dd_matrix(n: usize, entries: &[(usize, usize, f64)]) -> Csr {
    let mut coo = Coo::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for &(i, j, v) in entries {
        let (i, j) = (i % n, j % n);
        if i != j {
            let v = -(v.abs());
            coo.push(i, j, v);
            coo.push(j, i, v);
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for i in 0..n {
        coo.push(i, i, row_sums[i] + 1.0);
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transpose_is_involutive(
        entries in prop::collection::vec((0usize..30, 0usize..30, -5.0f64..5.0), 1..120)
    ) {
        let a = dd_matrix(30, &entries);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmv_is_linear(
        entries in prop::collection::vec((0usize..20, 0usize..20, -3.0f64..3.0), 1..60),
        x in prop::collection::vec(-10.0f64..10.0, 20),
        y in prop::collection::vec(-10.0f64..10.0, 20),
        c in -4.0f64..4.0,
    ) {
        let a = dd_matrix(20, &entries);
        let mut ax = vec![0.0; 20];
        let mut ay = vec![0.0; 20];
        a.spmv(&x, &mut ax);
        a.spmv(&y, &mut ay);
        let z: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| c * xi + yi).collect();
        let mut az = vec![0.0; 20];
        a.spmv(&z, &mut az);
        for i in 0..20 {
            let expect = c * ax[i] + ay[i];
            prop_assert!((az[i] - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn spgemm_associates_with_spmv(
        entries in prop::collection::vec((0usize..15, 0usize..15, -3.0f64..3.0), 1..50),
        x in prop::collection::vec(-5.0f64..5.0, 15),
    ) {
        // (A·A) x == A (A x)
        let a = dd_matrix(15, &entries);
        let aa = spgemm(&a, &a);
        let mut ax = vec![0.0; 15];
        a.spmv(&x, &mut ax);
        let mut aax = vec![0.0; 15];
        a.spmv(&ax, &mut aax);
        let mut aax2 = vec![0.0; 15];
        aa.spmv(&x, &mut aax2);
        for i in 0..15 {
            prop_assert!((aax[i] - aax2[i]).abs() < 1e-8 * (1.0 + aax[i].abs()));
        }
    }

    #[test]
    fn rap_is_symmetric_for_random_dd_matrices(
        entries in prop::collection::vec((0usize..24, 0usize..24, -3.0f64..3.0), 10..100)
    ) {
        let a = dd_matrix(24, &entries);
        let s = asyncmg_amg::classical_strength(&a, 0.25);
        let cf = asyncmg_amg::coarsen::coarsen(&s, Coarsening::Hmis, 1);
        let nc = asyncmg_amg::coarsen::n_coarse(&cf);
        prop_assume!(nc > 0 && nc < 24);
        let p = asyncmg_amg::interp::build_interpolation(
            &a, &s, &cf, asyncmg_amg::Interpolation::ClassicalModified, 0.0);
        let ac = rap(&a, &p);
        prop_assert!(ac.is_symmetric(1e-9));
        prop_assert_eq!(ac.nrows(), nc);
    }

    #[test]
    fn hierarchy_always_terminates_and_shrinks(
        entries in prop::collection::vec((0usize..40, 0usize..40, -3.0f64..3.0), 30..200)
    ) {
        let a = dd_matrix(40, &entries);
        let h = build_hierarchy(a, &AmgOptions { max_coarse: 8, ..Default::default() });
        let sizes = h.level_sizes();
        for w in sizes.windows(2) {
            prop_assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn mult_reduces_residual_on_random_dd_systems(
        entries in prop::collection::vec((0usize..30, 0usize..30, -3.0f64..3.0), 20..150),
        bvec in prop::collection::vec(-1.0f64..1.0, 30),
    ) {
        let a = dd_matrix(30, &entries);
        let h = build_hierarchy(a, &AmgOptions { max_coarse: 8, ..Default::default() });
        let s = MgSetup::new(h, MgOptions::default());
        let res =
            asyncmg_core::mult::solve_mult_probed(&s, &bvec, 15, None, &asyncmg_core::NoopProbe);
        // Diagonally dominant + damped Jacobi ⇒ convergent cycle.
        prop_assert!(res.final_relres() < 0.9, "relres {}", res.final_relres());
    }

    #[test]
    fn dense_lu_solves_random_dd_systems(
        entries in prop::collection::vec((0usize..12, 0usize..12, -3.0f64..3.0), 5..60),
        xs in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let a = dd_matrix(12, &entries);
        let lu = asyncmg_sparse::DenseLu::factor(&a).expect("dd matrix nonsingular");
        let mut b = vec![0.0; 12];
        a.spmv(&xs, &mut b);
        let got = lu.solve_vec(&b);
        for i in 0..12 {
            prop_assert!((got[i] - xs[i]).abs() < 1e-7 * (1.0 + xs[i].abs()));
        }
    }

    #[test]
    fn empty_rows_survive_spmv_diag_and_transpose(
        entries in prop::collection::vec((0usize..18, 0usize..18, -4.0f64..4.0), 1..80),
        x in prop::collection::vec(-5.0f64..5.0, 18),
    ) {
        // Rows ≡ 0 (mod 3) are left completely empty — the parallel setup
        // kernels hit such rows on aggressive coarsenings and must not
        // mis-index them.
        let n = 18;
        let mut coo = Coo::new(n, n);
        for &(i, j, v) in &entries {
            let (i, j) = (i % n, j % n);
            if i % 3 != 0 {
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let mut ax = vec![1.0; n];
        a.spmv(&x, &mut ax);
        let d = a.diag();
        let mut d2 = vec![-1.0; n];
        a.diag_into(&mut d2);
        for i in (0..n).step_by(3) {
            prop_assert_eq!(a.row(i).0.len(), 0, "row {} not empty", i);
            prop_assert_eq!(ax[i], 0.0);
            prop_assert_eq!(d[i], 0.0);
        }
        prop_assert_eq!(&d, &d2);
        // Empty rows become empty columns of the transpose and round-trip.
        let t = a.transpose();
        for i in (0..n).step_by(3) {
            for j in 0..n {
                prop_assert_eq!(t.get(j, i), 0.0);
            }
        }
        prop_assert_eq!(t.transpose(), a);
    }

    #[test]
    fn coo_duplicate_entries_sum_on_conversion(
        entries in prop::collection::vec((0usize..14, 0usize..14, -4.0f64..4.0), 1..60),
    ) {
        // Deduplicate positions so each (i, j) is pushed exactly twice in
        // the doubled matrix: summing v + v is exact in IEEE arithmetic,
        // making bitwise comparison against the 2v single-push matrix valid.
        let n = 14;
        let mut seen = std::collections::HashSet::new();
        let mut once = Coo::new(n, n);
        let mut twice = Coo::new(n, n);
        for &(i, j, v) in &entries {
            let (i, j) = (i % n, j % n);
            if seen.insert((i, j)) {
                once.push(i, j, 2.0 * v);
                twice.push(i, j, v);
                twice.push(i, j, v);
            }
        }
        let a = once.to_csr();
        let b = twice.to_csr();
        prop_assert_eq!(b.nnz(), a.nnz(), "duplicates not merged");
        prop_assert_eq!(b, a);
    }

    #[test]
    fn rectangular_transpose_preserves_every_entry(
        entries in prop::collection::vec((0usize..11, 0usize..17, -4.0f64..4.0), 1..70),
    ) {
        // Rectangular matrices (interpolation operators are n×nc) must
        // transpose entry-exactly, swap their dimensions, and round-trip.
        let (m, n) = (11, 17);
        let mut coo = Coo::new(m, n);
        let mut seen = std::collections::HashSet::new();
        for &(i, j, v) in &entries {
            if seen.insert((i, j)) {
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let t = a.transpose();
        prop_assert_eq!(t.nrows(), n);
        prop_assert_eq!(t.ncols(), m);
        prop_assert_eq!(t.nnz(), a.nnz());
        for i in 0..m {
            let (cols, vals) = a.row(i);
            for (c, v) in cols.iter().zip(vals) {
                prop_assert_eq!(t.get(*c as usize, i), *v);
            }
        }
        prop_assert_eq!(t.transpose(), a);
    }

    #[test]
    fn diag_is_zero_where_diagonal_entry_is_missing(
        entries in prop::collection::vec((0usize..16, 0usize..16, 0.5f64..4.0), 1..80),
        missing in prop::collection::vec(0usize..16, 1..8),
    ) {
        // Strictly off-diagonal entries everywhere except a few explicit
        // diagonal survivors: `diag`/`diag_into` must report 0.0 exactly at
        // the missing positions instead of panicking or mis-binary-searching.
        let n = 16;
        let missing: std::collections::HashSet<usize> = missing.into_iter().collect();
        let mut coo = Coo::new(n, n);
        for &(i, j, v) in &entries {
            let (i, j) = (i % n, j % n);
            if i != j {
                coo.push(i, j, v);
            }
        }
        for i in 0..n {
            if !missing.contains(&i) {
                coo.push(i, i, 1.0 + i as f64);
            }
        }
        let a = coo.to_csr();
        let d = a.diag();
        let mut d2 = vec![f64::NAN; n];
        a.diag_into(&mut d2);
        for i in 0..n {
            let expect = if missing.contains(&i) { 0.0 } else { 1.0 + i as f64 };
            prop_assert_eq!(d[i], expect, "diag[{}]", i);
            prop_assert_eq!(d2[i], expect, "diag_into[{}]", i);
        }
    }

    #[test]
    fn interpolation_rows_bounded_and_c_rows_identity(
        entries in prop::collection::vec((0usize..25, 0usize..25, -3.0f64..3.0), 20..120)
    ) {
        let a = dd_matrix(25, &entries);
        let s = asyncmg_amg::classical_strength(&a, 0.25);
        let cf = asyncmg_amg::coarsen::coarsen(&s, Coarsening::Pmis, 2);
        let nc = asyncmg_amg::coarsen::n_coarse(&cf);
        prop_assume!(nc > 0);
        let p = asyncmg_amg::interp::build_interpolation(
            &a, &s, &cf, asyncmg_amg::Interpolation::ClassicalModified, 0.0);
        let (cmap, _) = asyncmg_amg::interp::coarse_map(&cf);
        for i in 0..25 {
            if cf[i] == asyncmg_amg::Cf::C {
                let (cols, vals) = p.row(i);
                prop_assert_eq!(cols, &[cmap[i]][..]);
                prop_assert_eq!(vals, &[1.0][..]);
            } else {
                // Diagonally dominant rows give bounded weights.
                for v in p.row(i).1 {
                    prop_assert!(v.abs() < 10.0, "weight {v}");
                }
            }
        }
    }
}
