//! Resilient-session integration tests (the PR-5 acceptance scenarios):
//! checkpoint/rollback, the retry ladder, bit-identical seeded replay with
//! virtual-clock backoff, and the deterministic watchdog timeout path.
//!
//! The headline scenario: a fault plan that crashes a grid team *and*
//! corrupts a correction write sends attempt 0 into a structured failure;
//! `Solver::resilient` retries from the best checkpoint, escalates at
//! least one ladder rung, and still reaches `relres ≤ 1e-6`, with the
//! escalation path recorded in both the `SessionReport` and the telemetry
//! JSON.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{
    EscalationReason, Method, MgOptions, MgSetup, RetryPolicy, Rung, SolveOutcome, Solver,
    VirtualClock,
};
use asyncmg_harness::{check_session, fingerprint_session, FaultAxis, FuzzCase, ResilienceAxis};
use asyncmg_problems::rhs::random_rhs;
use asyncmg_problems::stencil::laplacian_7pt;
use asyncmg_telemetry::FaultKind;
use asyncmg_threads::{Corruption, Fault, FaultPlan};
use proptest::prelude::*;
use std::time::Duration;

fn setup_n(n: usize) -> MgSetup {
    let a = laplacian_7pt(n, n, n);
    MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default())
}

/// The PR-5 acceptance plan: grid team 1 crashes early and grid 2's
/// correction write is corrupted to NaN on the first async attempt.
fn acceptance_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with(Fault::Crash { team: 1, at_round: 2 }).with(Fault::CorruptWrite {
        grid: 2,
        at_round: 1,
        kind: Corruption::Nan,
    })
}

#[test]
fn crashed_and_corrupted_session_escalates_and_converges() {
    let s = setup_n(6);
    let b = random_rhs(s.n(), 0xFA17);
    let plan = acceptance_plan(0xFA17);
    let clock = VirtualClock::new();
    let report = Solver::new(&s)
        .method(Method::Multadd)
        .threads(4)
        .t_max(30)
        .tolerance(1e-6)
        .fault_plan(&plan)
        .session_seed(0xFA17)
        .session_clock(&clock)
        .retry(RetryPolicy {
            max_attempts: 6,
            backoff: Duration::from_millis(2),
            deadline: Some(Duration::from_secs(60)),
        })
        .with_trace()
        .resilient(&b);

    // The session converges despite the injected crash + corruption…
    assert!(report.converged, "session relres {} ({:?})", report.relres, report.outcome);
    assert!(report.relres <= 1e-6);
    assert_eq!(report.outcome, SolveOutcome::Converged);
    assert!(report.x.iter().all(|v| v.is_finite()));
    // …after escalating at least one rung off the fully async start.
    let escalations = report.escalations();
    assert!(!escalations.is_empty(), "no escalations recorded");
    assert_ne!(report.final_rung(), Some(Rung::AsyncAtomic));
    // Attempt 0 failed structurally (faulted or degraded, never silent).
    assert!(matches!(
        report.attempts[0].escalation,
        Some(EscalationReason::Faulted)
            | Some(EscalationReason::Degraded)
            | Some(EscalationReason::AboveTolerance)
    ));
    assert!(!report.attempts[0].faults.is_empty(), "attempt 0 logged no faults");
    // Checkpoints were taken and the escalation path reached the report.
    assert!(report.checkpoints.taken >= 1);
    // The merged trace records every attempt boundary and the JSON carries
    // the escalation path.
    let trace = report.trace.as_ref().expect("with_trace attaches a trace");
    assert_eq!(trace.attempts.len(), report.attempts.len());
    let json = trace.to_json();
    assert!(json.contains("\"schema\": \"asyncmg-trace-v5\""));
    assert!(json.contains("\"attempts\": ["));
    assert!(json.contains("\"rung\": \"async_atomic\""));
    assert!(json.contains("\"escalation\": \""));
    assert!(json.contains("\"checkpoints\": ["));
}

#[test]
fn seeded_session_replays_bit_identically_with_virtual_backoff() {
    let s = setup_n(6);
    let b = random_rhs(s.n(), 0xFA17);
    let run = || {
        let plan = acceptance_plan(0xFA17);
        let clock = VirtualClock::new();
        let report = Solver::new(&s)
            .method(Method::Multadd)
            .threads(4)
            .t_max(30)
            .tolerance(1e-6)
            .fault_plan(&plan)
            .session_seed(0xFA17)
            .session_clock(&clock)
            .retry(RetryPolicy {
                max_attempts: 6,
                backoff: Duration::from_millis(2),
                deadline: Some(Duration::from_secs(60)),
            })
            .with_trace()
            .resilient(&b);
        (fingerprint_session(&report), report)
    };
    let (fp_a, a) = run();
    let (fp_b, b2) = run();
    assert_eq!(fp_a, fp_b, "seeded sessions must replay bit-identically");
    for (u, v) in a.x.iter().zip(&b2.x) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
    assert_eq!(a.relres.to_bits(), b2.relres.to_bits());
    // Backoff and deadline run on the virtual clock: session "time" is the
    // exact sum of the backoff schedule, identical across replays (and no
    // wall-clock sleeping happened).
    assert_eq!(a.elapsed, b2.elapsed);
    let n_backoffs = a.attempts.len() as u32 - 1;
    let expected: Duration = (0..n_backoffs).map(|i| Duration::from_millis(2) * 2u32.pow(i)).sum();
    assert_eq!(a.elapsed, expected, "virtual session time must be the backoff sum");
}

#[test]
fn virtual_clock_expires_the_watchdog_budget_without_sleeping() {
    let s = setup_n(6);
    let b = random_rhs(s.n(), 7);
    let clock = VirtualClock::new();
    let wall = std::time::Instant::now();
    // A correction budget far beyond what the timeout allows: only the
    // watchdog can end this solve.
    let report = Solver::new(&s)
        .method(Method::Multadd)
        .threads(4)
        .t_max(50_000_000)
        .timeout(Duration::from_millis(50))
        .session_clock(&clock)
        .run(&b);
    assert_eq!(report.outcome, SolveOutcome::Faulted);
    assert!(
        report.faults.iter().any(|f| matches!(f.kind, FaultKind::Timeout)),
        "fault log {:?} lacks the timeout",
        report.faults
    );
    // The 50 ms budget elapsed on the virtual clock…
    assert!(clock.elapsed() >= Duration::from_millis(50));
    // …not on the wall clock (no real sleeping; generous CI margin).
    assert!(wall.elapsed() < Duration::from_secs(30));
}

#[test]
fn session_requires_a_tolerance() {
    let s = setup_n(6);
    let b = random_rhs(s.n(), 1);
    let err = Solver::new(&s).try_resilient(&b).unwrap_err();
    assert_eq!(err, asyncmg_core::SessionError::NoTolerance);
    assert!(err.to_string().contains("tolerance"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any PR-4 fault axis driven through the full ladder ends
    /// structurally: converged at 1e-6, or budget exhausted with a
    /// non-empty escalation log — never a hang (the virtual scheduler
    /// panics on deadlock), never a panic, never a non-finite iterate.
    #[test]
    fn any_fault_axis_ends_structurally(
        axis_idx in 0usize..5,
        session_seed in 0u64..(1u64 << 48),
    ) {
        let case = FuzzCase { fault: FaultAxis::ALL[axis_idx], ..FuzzCase::base() };
        let axis = ResilienceAxis::new(case);
        let run = axis.run(session_seed);
        if let Err(v) = check_session(&axis, &run) {
            prop_assert!(false, "session oracle violation: {v}");
        }
        // And the session replays bit-identically.
        let again = axis.run(session_seed);
        prop_assert_eq!(run.fingerprint, again.fingerprint);
    }
}
