//! Cross-crate integration: Matrix Market I/O → AMG setup → preconditioned
//! CG, and the chaotic-relaxation baseline against the multigrid solvers.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::AdditiveMethod;
use asyncmg_core::krylov::{pcg, AdditivePrec, IdentityPrec, VCyclePrec};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt, TestSet};
use asyncmg_smoothers::chaotic::{async_jacobi_solve, jacobi_solve, rho_abs_jacobi};
use asyncmg_sparse::io::{read_matrix_market, write_matrix_market};

#[test]
fn matrix_survives_io_roundtrip_and_still_solves() {
    let a = laplacian_7pt(8, 8, 8);
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).unwrap();
    let a2 = read_matrix_market(buf.as_slice()).unwrap();
    assert_eq!(a, a2);
    let b = random_rhs(a2.nrows(), 3);
    let s = MgSetup::new(build_hierarchy(a2, &AmgOptions::default()), MgOptions::default());
    let res = solve_mult_probed(&s, &b, 30, None, &NoopProbe);
    assert!(res.final_relres() < 1e-8, "{}", res.final_relres());
}

#[test]
fn all_test_sets_roundtrip_through_matrix_market() {
    for set in TestSet::all() {
        let a = set.matrix(6);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let a2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, a2, "{} roundtrip", set.name());
    }
}

#[test]
fn pcg_with_multigrid_beats_plain_cg_on_fem_laplace() {
    let a = TestSet::FemLaplace.matrix(11);
    let b = random_rhs(a.nrows(), 5);
    let s = MgSetup::new(build_hierarchy(a.clone(), &AmgOptions::default()), MgOptions::default());
    let plain = pcg(&a, &b, 1e-9, 2000, &mut IdentityPrec);
    let mut vc = VCyclePrec::new(&s);
    let mg = pcg(&a, &b, 1e-9, 2000, &mut vc);
    assert!(plain.converged && mg.converged);
    assert!(
        mg.history.len() * 2 <= plain.history.len(),
        "MG-PCG {} its vs CG {} its",
        mg.history.len(),
        plain.history.len()
    );
}

#[test]
fn bpx_precondition_iteration_count_roughly_level_independent() {
    // BPX's point: PCG iterations grow slowly (polylog) in problem size.
    let mut counts = Vec::new();
    for n in [8usize, 12, 16] {
        let a = laplacian_7pt(n, n, n);
        let b = random_rhs(a.nrows(), 2);
        let s =
            MgSetup::new(build_hierarchy(a.clone(), &AmgOptions::default()), MgOptions::default());
        let mut prec = AdditivePrec::new(&s, AdditiveMethod::Bpx);
        let r = pcg(&a, &b, 1e-8, 500, &mut prec);
        assert!(r.converged, "n={n}");
        counts.push(r.history.len());
    }
    // Far from the O(n^(1/3)) growth of plain CG: allow at most ~2x growth
    // from 8³ to 16³ (plain CG would grow ~2x per doubling with a much
    // larger constant).
    assert!(counts[2] <= counts[0] * 2, "BPX-PCG iterations grew too fast: {counts:?}");
}

#[test]
fn multigrid_crushes_chaotic_relaxation() {
    // The motivation of the whole paper: asynchronous *basic* methods are
    // robust but slow; multigrid converges orders faster per work unit.
    let a = laplacian_7pt(10, 10, 10);
    let b = random_rhs(a.nrows(), 4);
    assert!(rho_abs_jacobi(&a, 0.9, 100) < 1.0);
    let jac = jacobi_solve(&a, &b, 0.9, 100);
    let s = MgSetup::new(build_hierarchy(a.clone(), &AmgOptions::default()), MgOptions::default());
    let mg = solve_mult_probed(&s, &b, 30, None, &NoopProbe);
    assert!(
        mg.final_relres() < jac.relres * 1e-2,
        "mult {} vs jacobi {}",
        mg.final_relres(),
        jac.relres
    );
}

#[test]
fn async_jacobi_robust_across_thread_counts() {
    let a = laplacian_7pt(6, 6, 6);
    let b = random_rhs(a.nrows(), 6);
    for threads in [1usize, 2, 4] {
        let res = async_jacobi_solve(&a, &b, 0.9, 300, threads);
        assert!(res.relres < 1e-2, "{threads} threads: {}", res.relres);
    }
}
