//! Integration tests for the telemetry subsystem and the unified [`Solver`]
//! API: tolerance-based stopping, trace export, legacy equivalence, and the
//! zero-cost claim for [`NoopProbe`].

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::asynchronous::{solve_async_probed, AsyncOptions};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::{Method, NoopProbe, Solver, StopCriterion};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

fn setup_7pt(n: usize) -> MgSetup {
    let a = laplacian_7pt(n, n, n);
    MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default())
}

/// The issue's acceptance scenario: async Multadd on `laplacian_7pt(16³)`
/// with `Tolerance { relres: 1e-8 }` stops below tolerance without
/// exhausting `t_max`, and the exported trace is consistent.
#[test]
fn tolerance_stops_async_multadd_below_tol() {
    let setup = setup_7pt(16);
    let b = random_rhs(setup.n(), 1);
    let t_max = 1000;
    let report = Solver::new(&setup)
        .method(Method::Multadd)
        .threads(4)
        .t_max(t_max)
        .tolerance(1e-8)
        .with_trace()
        .run(&b);

    assert!(report.converged, "did not converge: relres {}", report.relres);
    assert!(report.relres < 1e-8, "relres {}", report.relres);
    // Stopped by the monitor, not by running the correction budget dry: the
    // 7pt Laplacian converges to 1e-8 in a few tens of cycles, far under
    // 1000 corrections per grid.
    assert!(
        report.grid_corrections.iter().all(|&c| c < t_max),
        "t_max exhausted: {:?}",
        report.grid_corrections
    );

    let trace = report.trace.as_ref().expect("with_trace attaches a trace");
    // Counter-backed per-grid counts must match the solver's own counts.
    assert_eq!(trace.grid_corrections(), report.grid_corrections);
    // The residual history ends below tolerance and is loosely monotone:
    // multigrid contracts every cycle, so each sample should be no larger
    // than a small factor of the previous one (asynchronous sampling races
    // the solver, so exact monotonicity is not guaranteed).
    let hist = &trace.residual_history;
    assert!(!hist.is_empty());
    assert!(hist.last().unwrap().relres < 1e-8);
    for w in hist.windows(2) {
        assert!(w[1].t_ns >= w[0].t_ns, "history not time-ordered");
        assert!(
            w[1].relres <= w[0].relres * 10.0,
            "residual rose sharply: {} -> {}",
            w[0].relres,
            w[1].relres
        );
    }

    // The JSON export carries the schema tag and parses to balanced braces.
    let json = trace.to_json();
    assert!(json.contains("\"schema\": \"asyncmg-trace-v5\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

/// With an unreachably small tolerance, `t_max` still caps the run.
#[test]
fn tolerance_respects_t_max_cap() {
    let setup = setup_7pt(8);
    let b = random_rhs(setup.n(), 2);
    let report =
        Solver::new(&setup).method(Method::Multadd).threads(2).t_max(5).tolerance(1e-300).run(&b);
    assert!(!report.converged);
    assert!(report.grid_corrections.iter().all(|&c| c <= 5), "{:?}", report.grid_corrections);
}

/// The builder's async path and the direct probed entry point produce
/// results of the same quality on the same problem.
#[test]
fn solver_matches_direct_async_entry_point() {
    let setup = setup_7pt(10);
    let b = random_rhs(setup.n(), 3);

    let report = Solver::new(&setup).method(Method::Multadd).threads(4).t_max(30).run(&b);

    let mut opts = AsyncOptions::default();
    opts.t_max = 30;
    opts.n_threads = 4;
    let direct = solve_async_probed(&setup, &b, &opts, &NoopProbe);

    // Asynchronous runs are not bitwise reproducible; both must converge to
    // the same order of magnitude.
    assert!(report.relres < 1e-3 && direct.relres < 1e-3);
    let ratio = (report.relres / direct.relres).max(direct.relres / report.relres);
    assert!(ratio < 1e3, "solver {} vs direct {}", report.relres, direct.relres);
    assert_eq!(report.grid_corrections.len(), direct.grid_corrections.len());
}

/// Sequential paths through the builder agree exactly with the direct
/// sequential driver (same deterministic arithmetic).
#[test]
fn solver_matches_direct_sequential_mult_exactly() {
    let setup = setup_7pt(8);
    let b = random_rhs(setup.n(), 4);
    let report = Solver::new(&setup).method(Method::Mult).t_max(10).run(&b);
    let direct = asyncmg_core::solve_mult_probed(&setup, &b, 10, None, &NoopProbe);
    assert_eq!(report.x, direct.x);
    assert_eq!(report.relres, direct.final_relres());
}

/// `NoopProbe` must not meaningfully slow the async solver. Wall-clock
/// comparisons of threaded code are noisy in CI, so this is a loose smoke
/// test (the ≤5% claim is for the generated code, checked by inspection of
/// the monomorphised path — `Probe::enabled()` gates every record call).
#[test]
fn noop_probe_overhead_smoke() {
    let setup = setup_7pt(10);
    let b = random_rhs(setup.n(), 5);
    let mut opts = AsyncOptions::default();
    opts.t_max = 20;
    opts.n_threads = 2;

    // Warm-up, then measure both orders to cancel drift.
    solve_async_probed(&setup, &b, &opts, &NoopProbe);
    let t0 = std::time::Instant::now();
    solve_async_probed(&setup, &b, &opts, &NoopProbe);
    let probed = t0.elapsed();
    assert!(probed.as_secs_f64() < 30.0, "async solve unreasonably slow: {probed:?}");
}

/// A synthetic trace with fixed timestamps covering every JSON feature:
/// several grids (one counter-only with no retained events), a `NaN`
/// `local_res` (rendered `null`), multiple phases, dropped events, a fault
/// log mixing injected faults with recovery actions, the v2 resilience
/// surface (checkpoint events and session attempt boundaries), and the v3
/// sharded surface (per-rank message counters and reduction records).
fn golden_trace() -> asyncmg_telemetry::SolveTrace {
    use asyncmg_telemetry::{
        AttemptRecord, CheckpointRecord, Event, FaultKind, FaultRecord, Phase, ReductionRecord,
        ResidualSample, ShardMessageStats, SolveTrace,
    };
    let events = vec![
        Event::Phase { grid: 0, phase: Phase::Restrict, start_ns: 2, dur_ns: 3 },
        Event::Phase { grid: 0, phase: Phase::Smooth, start_ns: 5, dur_ns: 10 },
        Event::Phase { grid: 1, phase: Phase::Smooth, start_ns: 6, dur_ns: 12 },
        Event::Phase { grid: 0, phase: Phase::Prolong, start_ns: 15, dur_ns: 2 },
        Event::Phase { grid: 0, phase: Phase::SharedWrite, start_ns: 17, dur_ns: 1 },
        Event::Phase { grid: 0, phase: Phase::ResidualUpdate, start_ns: 18, dur_ns: 4 },
        Event::Correction { grid: 0, index: 0, t_ns: 22, local_res: 0.5 },
        Event::Correction { grid: 1, index: 0, t_ns: 25, local_res: f64::NAN },
        Event::Correction { grid: 0, index: 1, t_ns: 40, local_res: 0.125 },
    ];
    let mut trace = SolveTrace::from_events(
        events,
        &[2, 1, 0],
        vec![
            ResidualSample { t_ns: 0, relres: 1.0 },
            ResidualSample { t_ns: 30, relres: 2.5e-2 },
            ResidualSample { t_ns: 60, relres: 8.0e-4 },
        ],
        3,
        vec![
            FaultRecord { t_ns: 24, kind: FaultKind::WriteCorrupted { grid: 1 } },
            FaultRecord { t_ns: 24, kind: FaultKind::GuardTripped { grid: 1 } },
            FaultRecord { t_ns: 50, kind: FaultKind::TeamCrash { team: 2 } },
            FaultRecord { t_ns: 55, kind: FaultKind::Quarantined { grid: 1 } },
        ],
    );
    trace.checkpoints = vec![
        CheckpointRecord { t_ns: 28, attempt: 0, relres: 2.5e-2, restored: false },
        CheckpointRecord { t_ns: 62, attempt: 1, relres: 2.5e-2, restored: true },
    ];
    trace.attempts = vec![
        AttemptRecord {
            index: 0,
            rung: "async_atomic".into(),
            start_ns: 0,
            elapsed_ns: 58,
            relres: 2.5e-2,
            outcome: "degraded".into(),
            escalation: Some("degraded".into()),
        },
        AttemptRecord {
            index: 1,
            rung: "async_lock".into(),
            start_ns: 60,
            elapsed_ns: 40,
            relres: 8.0e-4,
            outcome: "converged".into(),
            escalation: None,
        },
    ];
    trace.messages = vec![
        ShardMessageStats {
            rank: 0,
            sent: 12,
            delivered: 10,
            dropped: 1,
            overflowed: 0,
            retransmits: 0,
        },
        ShardMessageStats {
            rank: 1,
            sent: 11,
            delivered: 12,
            dropped: 0,
            overflowed: 1,
            retransmits: 0,
        },
        ShardMessageStats {
            rank: 2,
            sent: 9,
            delivered: 9,
            dropped: 0,
            overflowed: 0,
            retransmits: 3,
        },
    ];
    trace.reductions = vec![
        ReductionRecord { epoch: 0, relres: 1.0, parts: 2, t_ns: 12 },
        ReductionRecord { epoch: 2, relres: 2.5e-2, parts: 2, t_ns: 45 },
    ];
    trace
}

/// The JSON export is a stable external format (`asyncmg-trace-v5`): the
/// serialisation of a fixed trace must match the committed golden file
/// byte-for-byte. Run with `GOLDEN_UPDATE=1` to re-bless after a deliberate
/// schema change (and bump the schema tag when doing so).
#[test]
fn trace_json_matches_golden_file() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/trace_schema.json");
    let json = golden_trace().to_json();
    if std::env::var("GOLDEN_UPDATE").as_deref() == Ok("1") {
        std::fs::write(golden_path, &json).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("missing tests/golden/trace_schema.json; bless with GOLDEN_UPDATE=1");
    assert_eq!(
        json, golden,
        "trace JSON diverged from tests/golden/trace_schema.json — if the \
         schema change is intentional, bump the schema tag and re-bless with \
         GOLDEN_UPDATE=1 cargo test -p asyncmg-apps --test telemetry_solver"
    );
}

/// Structural guarantees of the golden trace itself: the schema tag, the
/// `null` rendering of non-finite floats, and the full phase vocabulary.
#[test]
fn golden_trace_covers_schema_surface() {
    let json = golden_trace().to_json();
    assert!(json.contains("\"schema\": \"asyncmg-trace-v5\""));
    assert!(json.contains("\"local_res\": null"), "NaN must render as null");
    assert!(json.contains("\"dropped_events\": 3"));
    // Every phase name appears in phase_totals (zero-count ones included),
    // so downstream consumers can rely on a fixed-size array.
    for name in [
        "restrict",
        "smooth",
        "prolong",
        "shared_write",
        "residual_update",
        "setup_strength",
        "setup_interp",
        "setup_rap",
        "checkpoint",
    ] {
        assert!(json.contains(&format!("\"phase\": \"{name}\"")), "missing phase {name}");
    }
    // Grid 2 is counter-only: present with an empty events array.
    assert!(json.contains("\"grid\": 2, \"corrections\": 0, \"events\": [\n    ]"));
    // Fault records carry their kind name plus kind-specific fields.
    assert!(json.contains("\"kind\": \"write_corrupted\", \"grid\": 1"));
    assert!(json.contains("\"kind\": \"team_crash\", \"team\": 2"));
    assert!(json.contains("\"kind\": \"quarantined\", \"grid\": 1"));
    // v2 resilience surface: checkpoint events (taken and restored) and
    // attempt boundaries with rung / outcome / escalation fields.
    assert!(json.contains("\"checkpoints\": ["));
    assert!(json.contains("\"restored\": false"));
    assert!(json.contains("\"restored\": true"));
    assert!(json.contains("\"attempts\": ["));
    assert!(json.contains("\"rung\": \"async_atomic\""));
    assert!(json.contains("\"escalation\": \"degraded\""));
    assert!(json.contains("\"escalation\": null"), "final attempt renders null escalation");
    // v3 sharded surface: per-rank message counters and reduction records.
    assert!(json.contains("\"messages\": ["));
    assert!(json.contains("\"rank\": 1, \"sent\": 11, \"delivered\": 12"));
    assert!(json.contains("\"overflowed\": 1"));
    assert!(json.contains("\"reductions\": ["));
    assert!(json.contains("\"epoch\": 2, \"relres\": 2.5e-2, \"parts\": 2, \"t_ns\": 45"));
}

/// v2 consumers keep working on v3 traces: every top-level key of the
/// committed v2 golden is still present in the v3 export, the two schema
/// tags differ, and `schema_of` identifies both files.
#[test]
fn trace_schema_v3_is_superset_of_v2() {
    use asyncmg_telemetry::SolveTrace;
    let v2_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/trace_schema_v2.json");
    let v2 = std::fs::read_to_string(v2_path).expect("missing tests/golden/trace_schema_v2.json");
    let v3 = golden_trace().to_json();

    assert_eq!(SolveTrace::schema_of(&v2), Some("asyncmg-trace-v2"));
    assert_eq!(SolveTrace::schema_of(&v3), Some(SolveTrace::SCHEMA));
    assert_ne!(SolveTrace::schema_of(&v2), SolveTrace::schema_of(&v3), "schema tag must bump");

    // Top-level keys of the v2 document (two-space indentation) must all
    // survive into v3 — additive evolution only.
    let keys = |doc: &str| {
        doc.lines()
            .filter_map(|l| {
                let l = l.strip_prefix("  \"")?;
                Some(l.split('"').next().unwrap().to_string())
            })
            .collect::<Vec<_>>()
    };
    let v2_keys = keys(&v2);
    assert!(v2_keys.contains(&"residual_history".to_string()), "key scrape broke: {v2_keys:?}");
    for key in &v2_keys {
        if key == "schema" {
            continue;
        }
        assert!(v3.contains(&format!("  \"{key}\"")), "v3 export lost v2 top-level key {key:?}");
    }
}

/// `StopCriterion::Tolerance` participates in options equality and the
/// helper constructor fills a sane check period.
#[test]
fn tolerance_criterion_constructor() {
    let c = StopCriterion::tolerance(1e-8);
    match c {
        StopCriterion::Tolerance { relres, check_every } => {
            assert_eq!(relres, 1e-8);
            assert!(check_every.as_micros() > 0);
        }
        _ => panic!("wrong variant"),
    }
}
