//! The theoretical backbone of Multadd (Section II.B.1): with the
//! symmetrized smoothing matrix `Λ_k = M̄_k⁻¹` and smoothed interpolants,
//! Multadd is *mathematically equivalent* to a symmetrized multiplicative
//! V(1,1)-cycle. For symmetric `M` (Jacobi), the V(1,1)-cycle of
//! Algorithm 1 with the same pre- and post-smoother is that symmetrized
//! cycle, so one cycle of each must produce the same iterate.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::{solve_additive_probed, AdditiveMethod};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_27pt, stencil::laplacian_7pt};
use asyncmg_smoothers::SmootherKind;

fn setup(a: asyncmg_sparse::Csr, omega: f64) -> MgSetup {
    let h = build_hierarchy(a, &AmgOptions::default());
    let mut opts = MgOptions::default();
    opts.smoother = SmootherKind::WJacobi { omega };
    opts.interp_omega = omega;
    MgSetup::new(h, opts)
}

fn solve_mult(s: &MgSetup, b: &[f64], t: usize) -> asyncmg_core::additive::SolveResult {
    solve_mult_probed(s, b, t, None, &NoopProbe)
}

fn solve_additive(
    s: &MgSetup,
    m: AdditiveMethod,
    b: &[f64],
    t: usize,
) -> asyncmg_core::additive::SolveResult {
    solve_additive_probed(s, m, b, t, None, &NoopProbe)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn one_cycle_of_multadd_equals_one_symmetric_v_cycle_7pt() {
    let s = setup(laplacian_7pt(7, 7, 7), 0.9);
    let b = random_rhs(s.n(), 17);
    let mult = solve_mult(&s, &b, 1);
    let multadd = solve_additive(&s, AdditiveMethod::Multadd, &b, 1);
    let scale = mult.x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let diff = max_abs_diff(&mult.x, &multadd.x);
    assert!(diff < 1e-10 * scale.max(1e-30), "iterates differ by {diff} (scale {scale})");
}

#[test]
fn equivalence_holds_over_multiple_cycles() {
    let s = setup(laplacian_7pt(6, 6, 6), 0.8);
    let b = random_rhs(s.n(), 23);
    let mult = solve_mult(&s, &b, 5);
    let multadd = solve_additive(&s, AdditiveMethod::Multadd, &b, 5);
    let scale = mult.x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    assert!(max_abs_diff(&mult.x, &multadd.x) < 1e-9 * scale.max(1e-30));
    // Residual histories match cycle by cycle.
    for (h1, h2) in mult.history.iter().zip(&multadd.history) {
        assert!((h1 - h2).abs() < 1e-9 * h1.max(1e-30), "{h1} vs {h2}");
    }
}

#[test]
fn equivalence_holds_on_27pt_with_l1_jacobi() {
    let h = build_hierarchy(laplacian_27pt(6, 6, 6), &AmgOptions::default());
    let mut opts = MgOptions::default();
    opts.smoother = SmootherKind::L1Jacobi;
    let s = MgSetup::new(h, opts);
    let b = random_rhs(s.n(), 29);
    let mult = solve_mult(&s, &b, 3);
    let multadd = solve_additive(&s, AdditiveMethod::Multadd, &b, 3);
    let scale = mult.x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    assert!(
        max_abs_diff(&mult.x, &multadd.x) < 1e-9 * scale.max(1e-30),
        "l1-Jacobi equivalence broken"
    );
}

#[test]
fn equivalence_breaks_without_symmetrized_smoother() {
    // Sanity check that the test is actually discriminating: BPX (plain
    // smoother, plain interpolants) must NOT match the multiplicative cycle.
    let s = setup(laplacian_7pt(6, 6, 6), 0.9);
    let b = random_rhs(s.n(), 31);
    let mult = solve_mult(&s, &b, 1);
    let bpx = solve_additive(&s, AdditiveMethod::Bpx, &b, 1);
    let scale = mult.x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    assert!(max_abs_diff(&mult.x, &bpx.x) > 1e-6 * scale);
}
