//! Kernel-axis bit-identity: every value of [`KernelAxis`] — scalar CSR,
//! SIMD CSR, scalar BSR, SIMD BSR, and auto — must replay the *same*
//! schedule-seeded run with a bit-identical fingerprint and solution.
//!
//! This is the end-to-end teeth behind the kernel layer's contract: the
//! blocked and SIMD kernels are restructurings of the exact `dot4`
//! accumulation order, never reassociations, so swapping them can never
//! move a single bit anywhere in a solve.

use asyncmg_harness::{FuzzCase, KernelAxis, MatrixFamily};
use asyncmg_smoothers::SmootherKind;

/// Families crossed with the kernel axis: a scalar stencil (where the BSR
/// selection is a structural no-op) and elasticity (where `Bsr` actually
/// installs 3×3 blocked operators on the hierarchy).
fn families() -> [MatrixFamily; 2] {
    [MatrixFamily::SevenPt(6), MatrixFamily::Elasticity(4)]
}

#[test]
fn kernel_axis_never_changes_the_fingerprint() {
    for family in families() {
        let mut base = FuzzCase::base();
        base.family = family;
        // ℓ1-Jacobi exercises the dispatched residual path in the smoother.
        base.smoother = SmootherKind::L1Jacobi;
        for seed in [0u64, 7] {
            let mut reference: Option<(u64, Vec<u64>, String)> = None;
            for kernel in KernelAxis::ALL {
                let mut c = base;
                c.kernel = kernel;
                let run = c.run(seed);
                assert!(run.result.relres.is_finite(), "{} seed {seed}", c.label());
                let bits: Vec<u64> = run.result.x.iter().map(|v| v.to_bits()).collect();
                match &reference {
                    None => reference = Some((run.fingerprint, bits, c.label())),
                    Some((fp, ref_bits, ref_label)) => {
                        assert_eq!(
                            run.fingerprint,
                            *fp,
                            "fingerprint of {} (seed {seed}) diverged from {}",
                            c.label(),
                            ref_label
                        );
                        assert_eq!(
                            &bits,
                            ref_bits,
                            "solution bits of {} (seed {seed}) diverged from {}",
                            c.label(),
                            ref_label
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn kernel_axis_labels_are_distinct_and_filterable() {
    let mut labels = Vec::new();
    for kernel in KernelAxis::ALL {
        let mut c = FuzzCase::base();
        c.kernel = kernel;
        labels.push(c.label());
    }
    // `Auto` is the unsuffixed base label; every forced axis appends its own
    // distinct suffix, so `HARNESS_CASE` substring filters can pin one.
    assert_eq!(labels.len(), 5);
    for (i, l) in labels.iter().enumerate() {
        for (j, m) in labels.iter().enumerate() {
            if i < j {
                assert_ne!(l, m);
            }
        }
    }
    assert!(labels[3].ends_with("/bsr-scalar"), "{}", labels[3]);
}
