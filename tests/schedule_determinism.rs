//! Determinism proof for the schedule-controlled harness: the same
//! `VirtualSched` seed replays a bit-identical execution — solution vector,
//! scheduler decision sequence, and telemetry event stream — while
//! different seeds explore different interleavings.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{
    solve_async_probed, solve_async_sched, solve_mult_threaded_probed, solve_mult_threaded_sched,
    AdditiveMethod, AsyncOptions, MgOptions, MgSetup, NoopProbe, ResComp, WriteMode,
};
use asyncmg_harness::{CaseRun, FuzzCase};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_threads::{ReadDelay, VirtualSched};

/// Bitwise comparison of two runs: solution, decisions, telemetry content.
/// Timestamps are the one nondeterministic field and are not compared.
fn assert_bit_identical(r1: &CaseRun, r2: &CaseRun) {
    let x1: Vec<u64> = r1.result.x.iter().map(|v| v.to_bits()).collect();
    let x2: Vec<u64> = r2.result.x.iter().map(|v| v.to_bits()).collect();
    assert_eq!(x1, x2, "solution vectors differ bitwise");
    assert_eq!(r1.result.relres.to_bits(), r2.result.relres.to_bits());
    assert_eq!(r1.result.grid_corrections, r2.result.grid_corrections);
    assert_eq!(r1.decisions, r2.decisions, "interleavings differ");
    assert_eq!(r1.fingerprint, r2.fingerprint);
    // Telemetry event streams: identical per-grid correction sequences.
    assert_eq!(r1.trace.grids.len(), r2.trace.grids.len());
    for (g1, g2) in r1.trace.grids.iter().zip(&r2.trace.grids) {
        assert_eq!(g1.corrections, g2.corrections);
        assert_eq!(g1.events.len(), g2.events.len());
        for (e1, e2) in g1.events.iter().zip(&g2.events) {
            assert_eq!(e1.index, e2.index);
            assert_eq!(e1.local_res.to_bits(), e2.local_res.to_bits());
        }
    }
    assert_eq!(r1.trace.residual_history.len(), r2.trace.residual_history.len());
    for (s1, s2) in r1.trace.residual_history.iter().zip(&r2.trace.residual_history) {
        assert_eq!(s1.relres.to_bits(), s2.relres.to_bits());
    }
    for (t1, t2) in r1.trace.phase_totals.iter().zip(&r2.trace.phase_totals) {
        assert_eq!(t1.count, t2.count, "phase occurrence counts differ");
    }
}

#[test]
fn same_seed_is_bit_identical() {
    let case = FuzzCase::base();
    assert_bit_identical(&case.run(42), &case.run(42));
}

#[test]
fn different_seeds_produce_different_interleavings() {
    let case = FuzzCase::base();
    let base = case.run(0);
    let mut any_schedule_differs = false;
    let mut any_result_differs = false;
    for seed in 1..6u64 {
        let run = case.run(seed);
        any_schedule_differs |= run.decisions != base.decisions;
        any_result_differs |= run.fingerprint != base.fingerprint;
    }
    assert!(any_schedule_differs, "5 seeds replayed the schedule of seed 0");
    // Different interleavings reorder racy floating-point accumulation, so
    // at least one seed must also change the numerical outcome.
    assert!(any_result_differs, "5 seeds left the solution bit-identical to seed 0");
}

#[test]
fn every_flavour_replays_deterministically() {
    // Each write × residual flavour (plus AFACx) crosses different racy
    // code paths; all must replay bit-identically.
    let mut cases = Vec::new();
    for write in [WriteMode::Lock, WriteMode::Atomic] {
        for res_comp in [ResComp::Local, ResComp::Global, ResComp::ResidualBased] {
            let mut c = FuzzCase::base();
            c.write = write;
            c.res_comp = res_comp;
            cases.push(c);
        }
    }
    let mut afacx = FuzzCase::base();
    afacx.method = AdditiveMethod::Afacx;
    cases.push(afacx);
    for case in &cases {
        let r1 = case.run(7);
        let r2 = case.run(7);
        assert_eq!(r1.fingerprint, r2.fingerprint, "replay diverged for {}", case.label());
        assert_eq!(r1.decisions, r2.decisions, "schedule diverged for {}", case.label());
    }
}

#[test]
fn delay_injection_is_deterministic_and_bounded() {
    let mut case = FuzzCase::base();
    case.delay = Some(ReadDelay { prob: 0.3, max_steps: 8 });
    let r1 = case.run(11);
    let r2 = case.run(11);
    assert_bit_identical(&r1, &r2);
    // Bounded staleness must not break Criterion 1 correction counts.
    assert!(r1.result.grid_corrections.iter().all(|&c| c == case.t_max));
    assert!(r1.result.relres.is_finite());
}

fn small_setup() -> MgSetup {
    let a = laplacian_7pt(6, 6, 6);
    let h = build_hierarchy(a, &AmgOptions::default());
    MgSetup::new(h, MgOptions::default())
}

#[test]
fn synchronous_mode_agrees_across_schedules() {
    // sync Multadd is fully barriered, but the order in which *teams* add
    // their corrections to the shared x between barriers is still
    // schedule-chosen, so results agree to rounding (the same bar the
    // tier-1 sync-vs-sequential test uses), not bitwise. Same-seed virtual
    // replays, by contrast, must be exactly identical.
    let setup = small_setup();
    let b = random_rhs(setup.n(), 3);
    let mut opts = AsyncOptions::default();
    opts.sync = true;
    opts.t_max = 6;
    opts.n_threads = 4;
    let os = solve_async_probed(&setup, &b, &opts, &NoopProbe);
    for seed in [0u64, 9] {
        let sched = VirtualSched::new(seed);
        let v = solve_async_sched(&setup, &b, &opts, &NoopProbe, &sched);
        assert!(
            (v.relres - os.relres).abs() < 1e-9 * os.relres.max(1e-20),
            "sync relres diverged beyond rounding: virtual {} vs OS {} (seed {seed})",
            v.relres,
            os.relres
        );
    }
    let r1 = solve_async_sched(&setup, &b, &opts, &NoopProbe, &VirtualSched::new(5));
    let r2 = solve_async_sched(&setup, &b, &opts, &NoopProbe, &VirtualSched::new(5));
    assert_eq!(
        r1.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        r2.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "same-seed sync replay was not bit-identical"
    );
}

#[test]
fn threaded_mult_is_schedule_independent() {
    let setup = small_setup();
    let b = random_rhs(setup.n(), 5);
    let os = solve_mult_threaded_probed(&setup, &b, 4, 5, None, &NoopProbe);
    let sched = VirtualSched::new(3);
    let v = solve_mult_threaded_sched(&setup, &b, 4, 5, None, &NoopProbe, &sched);
    assert_eq!(
        os.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        v.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    assert!(sched.steps() > 0, "virtual scheduler made no decisions");
}
