//! Seeded schedule fuzzing of the asynchronous solvers.
//!
//! Every case is one solver configuration (matrix family × smoother ×
//! write mode × residual flavour, plus AFACx and delay-injected rows) run
//! under several `VirtualSched` seeds, each a distinct deterministic
//! interleaving of the racy code paths. The convergence oracle asserts the
//! schedule-independent contract: finite iterate, per-grid correction
//! counts in the stop-criterion envelope, telemetry agreeing with the
//! solver, and — where the paper guarantees it — the residual actually
//! dropping.
//!
//! Reproduce a printed failure with the `HARNESS_SEED=… HARNESS_CASE=…`
//! line from its message; see `docs/testing.md`.

use asyncmg_core::{AdditiveMethod, ResComp, WriteMode};
use asyncmg_harness::{run_fuzz, seeds_from_env, FuzzCase, KernelAxis, MatrixFamily, Oracle};
use asyncmg_smoothers::SmootherKind;
use asyncmg_threads::ReadDelay;

/// The fuzz matrix: 2 families × 2 smoothers × 2 writes × 3 residual
/// flavours (24 Multadd cases), 4 AFACx rows, and 4 delay-injected rows.
fn fuzz_matrix() -> Vec<FuzzCase> {
    let families = [MatrixFamily::SevenPt(6), MatrixFamily::TwentySevenPt(5)];
    let smoothers = [FuzzCase::base().smoother, SmootherKind::HybridJgs];
    let writes = [WriteMode::Lock, WriteMode::Atomic];
    let res_comps = [ResComp::Local, ResComp::Global, ResComp::ResidualBased];
    let mut cases = Vec::new();
    for family in families {
        for smoother in smoothers {
            for write in writes {
                for res_comp in res_comps {
                    let mut c = FuzzCase::base();
                    c.family = family;
                    c.smoother = smoother;
                    c.write = write;
                    c.res_comp = res_comp;
                    cases.push(c);
                }
            }
        }
    }
    // AFACx crosses a different correction phase (two-level smoothing).
    for family in families {
        for write in writes {
            let mut c = FuzzCase::base();
            c.family = family;
            c.method = AdditiveMethod::Afacx;
            c.write = write;
            cases.push(c);
        }
    }
    // Bounded-delay rows: the paper's δ model at implementation level.
    for res_comp in [ResComp::Local, ResComp::ResidualBased] {
        for write in writes {
            let mut c = FuzzCase::base();
            c.res_comp = res_comp;
            c.write = write;
            c.delay = Some(ReadDelay { prob: 0.25, max_steps: 10 });
            cases.push(c);
        }
    }
    // Kernel-axis rows: the blocked (BSR) and forced-scalar kernels must
    // satisfy exactly the oracle the default kernel does. (Strict cross-axis
    // fingerprint equality is asserted by the dedicated kernel_axis test.)
    for kernel in [KernelAxis::CsrScalar, KernelAxis::BsrSimd] {
        let mut c = FuzzCase::base();
        c.family = MatrixFamily::Elasticity(4);
        c.smoother = SmootherKind::L1Jacobi;
        c.kernel = kernel;
        cases.push(c);
    }
    cases
}

/// Per-configuration convergence bar.
///
/// Local and residual-based runs must genuinely converge under any
/// schedule. Global-res reads stale residual components by design — the
/// paper's † entries show it can stagnate when grids are delayed — so the
/// oracle only requires boundedness there.
fn oracle_for(case: &FuzzCase) -> Oracle {
    // Elasticity converges slowly (~0.94/cycle for scalar AMG, as the
    // paper's Table I shows), so its rows only get the boundedness bar.
    let max_relres = match case.res_comp {
        ResComp::Global => None,
        _ if matches!(case.family, MatrixFamily::Elasticity(_)) => None,
        ResComp::Local | ResComp::ResidualBased => Some(0.2),
    };
    Oracle { max_relres }
}

#[test]
fn fuzz_all_flavours_across_seeds() {
    let cases = fuzz_matrix();
    let seeds = seeds_from_env(3);
    match run_fuzz(&cases, &seeds, oracle_for) {
        Ok(outcome) => {
            eprintln!(
                "schedule fuzz: {} cases x {} seeds = {} runs, all oracles green",
                outcome.cases,
                seeds.len(),
                outcome.runs
            );
            // The CI smoke bar: at least 64 seed x config combinations when
            // running the full sweep (env overrides intentionally narrow
            // it for reproduction runs).
            let narrowed = std::env::var("HARNESS_SEED").is_ok()
                || std::env::var("HARNESS_CASE").is_ok()
                || std::env::var("HARNESS_FUZZ_SEEDS").is_ok();
            if !narrowed {
                assert!(outcome.runs >= 64, "only {} seed x config combos", outcome.runs);
            }
        }
        Err(report) => panic!("{report}"),
    }
}

#[test]
fn shrinking_finds_smallest_failing_seed() {
    // `run_fuzz` honours `HARNESS_CASE`, which a replay run sets to narrow
    // the sweep — that would filter this test's forced-failure case away.
    if std::env::var("HARNESS_CASE").is_ok() {
        eprintln!("skipping shrink self-test under HARNESS_CASE replay");
        return;
    }
    // Force a failure with an impossible oracle and check the report
    // pinpoints seed 0 (the smallest) and prints a replay command.
    let cases = vec![FuzzCase::base()];
    let seeds = [5u64, 6];
    let impossible = |_: &FuzzCase| Oracle { max_relres: Some(0.0) };
    let report = run_fuzz(&cases, &seeds, impossible).unwrap_err();
    assert!(report.contains("smallest failing seed: 0"), "{report}");
    assert!(report.contains("HARNESS_SEED=0"), "{report}");
    assert!(report.contains("HARNESS_CASE="), "{report}");
}
