//! Chaos acceptance tests for the fault-tolerant service plane (the PR-10
//! scenarios): a defended service under scripted hierarchy poisoning,
//! column corruption, rescue-session fault injection, and breaker pressure
//! must conserve every ticket, keep the convergence rate up, log its
//! breaker transitions, and replay bit-identically — while an undefended
//! (or unattacked) service stays bit-identical to the classic path.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use asyncmg_harness::{
    check_service_chaos, fingerprint_service, seeds_from_env, undeadlined_convergence,
    ServiceChaosAxis,
};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_service::{
    ChaosEvent, ChaosPlan, RequestStatus, ResilienceOptions, ServiceOptions, SolveRequest,
    SolverService, TicketState,
};
use asyncmg_telemetry::ServiceStats;
use asyncmg_threads::{Corruption, Fault, FaultPlan, VirtualClock};

/// The directed acceptance scenario: 64 seeded requests through one
/// defended service on a virtual clock, with scripted chaos —
/// two hierarchy poisonings (breaker trips open), circuit-open fail-fast,
/// a half-open probe that re-closes the breaker, and two corrupted
/// solution columns rescued down the ladder, all with crash + corrupt-write
/// faults injected into every rescue session.
fn acceptance_scenario() -> (BTreeMap<u64, RequestStatus>, ServiceStats, u64) {
    let chaos = ChaosPlan::new()
        .with(ChaosEvent::PoisonHierarchy { dispatch: 1 })
        .with(ChaosEvent::PoisonHierarchy { dispatch: 2 })
        // Dispatch 5 between the two corruptions stays clean, so the
        // failure streak resets and the (threshold-2) breaker does not trip
        // a second time on the corruption pair.
        .with(ChaosEvent::CorruptColumn { dispatch: 4, column: 1, kind: Corruption::Nan })
        .with(ChaosEvent::CorruptColumn { dispatch: 6, column: 0, kind: Corruption::Inf });
    let fault_plan = FaultPlan::new(0xACCE)
        .with(Fault::Crash { team: 0, at_round: 2 })
        .with(Fault::CorruptWrite { grid: 0, at_round: 1, kind: Corruption::BitFlip });
    let resilience = ResilienceOptions {
        breaker_threshold: 2,
        breaker_backoff: Duration::from_millis(5),
        rescue_attempts: 4,
        rescue_backoff: Duration::from_millis(1),
        rescue_threads: 2,
        session_seed: Some(0xACCE),
        fault_plan: Some(fault_plan),
        chaos: Some(chaos),
    };
    let opts = ServiceOptions {
        batch_window: 4,
        queue_capacity: 128,
        resilience: Some(resilience),
        ..Default::default()
    };
    let clock = Arc::new(VirtualClock::new());
    let service = SolverService::with_clock(opts, clock.clone());
    let m = Arc::new(laplacian_7pt(6, 6, 6));
    let m2 = Arc::new(laplacian_7pt(7, 6, 6));

    let mut tickets = Vec::new();
    let mut seed = 0u64;
    let mut submit = |mat: &Arc<asyncmg_sparse::Csr>, tickets: &mut Vec<_>| {
        let req =
            SolveRequest::new(mat.clone(), random_rhs(mat.nrows(), seed)).tolerance(1e-6).t_max(60);
        seed += 1;
        tickets.push(service.submit(req).unwrap());
    };

    // Dispatch 0: clean cold build of m.
    for _ in 0..4 {
        submit(&m, &mut tickets);
    }
    service.process_batch();
    // Dispatches 1 and 2: the cached hierarchy is poisoned before each —
    // quarantine + rebuild twice, tripping the threshold-2 breaker open.
    for _ in 0..2 {
        for _ in 0..4 {
            submit(&m, &mut tickets);
        }
        service.process_batch();
    }
    // Breaker open: these two fail fast as CircuitOpen.
    for _ in 0..2 {
        submit(&m, &mut tickets);
    }
    service.process_batch();
    // Past the backoff: a half-open probe dispatch runs clean and the
    // breaker re-closes.
    clock.advance(Duration::from_millis(6));
    for _ in 0..4 {
        submit(&m, &mut tickets);
    }
    service.process_batch();
    // Dispatches 4 and 6: one solution column corrupted each — detected,
    // isolated from healthy batch-mates, rescued solo under fault
    // injection. Dispatch 5 runs clean in between.
    for _ in 0..3 {
        for _ in 0..4 {
            submit(&m, &mut tickets);
        }
        service.process_batch();
    }
    // Fill to 64 requests over both matrices, then drain.
    while tickets.len() < 64 {
        submit(if tickets.len() % 2 == 0 { &m } else { &m2 }, &mut tickets);
    }
    service.drain();

    // Conservation: every ticket resolves exactly once.
    let mut outcomes = BTreeMap::new();
    for t in tickets {
        match service.take(t) {
            TicketState::Ready(status) => {
                outcomes.insert(t.id(), status);
            }
            other => panic!("ticket {} not resolved: {other:?}", t.id()),
        }
        assert_eq!(service.take(t), TicketState::Claimed, "ticket {} duplicated", t.id());
    }
    let stats = service.stats();
    let fp =
        fingerprint_service(&outcomes, &service.cache_events(), &service.service_events(), &stats);

    let names: Vec<&str> = service.service_events().iter().map(|e| e.name()).collect();
    let pos = |n: &str| names.iter().position(|&x| x == n);
    let (opened, half, closed) = (
        pos("breaker_opened").expect("breaker never opened"),
        pos("breaker_half_open").expect("breaker never probed"),
        pos("breaker_closed").expect("breaker never re-closed"),
    );
    assert!(opened < half && half < closed, "breaker transitions out of order: {names:?}");

    (outcomes, stats, fp)
}

#[test]
fn acceptance_chaos_scenario_conserves_recovers_and_replays() {
    let (outcomes, stats, fp) = acceptance_scenario();
    assert_eq!(outcomes.len(), 64, "conservation: 64 tickets, 64 outcomes");

    // Both poisonings quarantined, both corruptions rescued, breaker
    // opened and re-closed, fail-fast rejections accounted.
    assert_eq!(stats.quarantined, 2);
    assert_eq!(stats.rescued, 2);
    assert!(stats.breaker_opened >= 1 && stats.breaker_closed >= 1);
    assert_eq!(stats.rejected_circuit_open, 2);
    assert_eq!(stats.completed, 62);

    // ≥ 90% of the (undeadlined) requests still reach the tolerance:
    // everything except the two circuit-open rejections converged.
    let converged = outcomes
        .values()
        .filter(|s| matches!(s, RequestStatus::Completed(r) if r.converged))
        .count();
    assert!(converged as f64 / 64.0 >= 0.9, "only {converged}/64 converged");

    // Rescued columns carry the flag; their batch-mates completed clean.
    let rescued: Vec<u64> = outcomes
        .iter()
        .filter(|(_, s)| matches!(s, RequestStatus::Completed(r) if r.rescued))
        .map(|(&t, _)| t)
        .collect();
    assert_eq!(rescued.len(), 2);

    // Bit-identical replay of the entire scenario.
    let (_, _, fp2) = acceptance_scenario();
    assert_eq!(fp, fp2, "chaos scenario replay diverged");
}

/// The seeded chaos sweep (CI widens with `HARNESS_FUZZ_SEEDS=8`): every
/// seed passes the conservation oracle, keeps the convergence rate up, and
/// replays bit-identically.
#[test]
fn chaos_axis_sweep_passes_the_oracle_and_replays() {
    let axis = ServiceChaosAxis::default();
    for seed in seeds_from_env(3) {
        let run = axis.run(seed);
        check_service_chaos(&axis, &run).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        assert!(
            undeadlined_convergence(&run) >= 0.9,
            "seed {seed}: convergence rate {} below 0.9",
            undeadlined_convergence(&run)
        );
        let replay = axis.run(seed);
        assert_eq!(run.fingerprint, replay.fingerprint, "seed {seed}: replay diverged");
    }
}

/// Overload shedding under chaos: with a low high-water mark the mix sheds
/// real work, and shed tickets still resolve — conservation holds with the
/// shedding path active.
#[test]
fn shedding_conserves_tickets_under_chaos() {
    let axis = ServiceChaosAxis { shed_high_water: Some(4), ..Default::default() };
    let mut any_shed = false;
    for seed in seeds_from_env(2) {
        let run = axis.run(seed);
        check_service_chaos(&axis, &run).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        any_shed |= run.stats.shed > 0;
    }
    assert!(any_shed, "high-water mark of 4 never shed in a 64-request mix");
}

/// A defended-but-unattacked service must produce bit-identical solutions
/// to an undefended one: integrity verification only reads, rescues never
/// trigger without sick columns, and the dispatch order is unchanged.
#[test]
fn unattacked_defended_service_matches_undefended_bitwise() {
    let run = |resilience: Option<ResilienceOptions>| {
        let clock = Arc::new(VirtualClock::new());
        let opts = ServiceOptions { resilience, ..Default::default() };
        let service = SolverService::with_clock(opts, clock.clone());
        let a = Arc::new(laplacian_7pt(6, 6, 6));
        let b = Arc::new(laplacian_7pt(5, 6, 6));

        let tickets: Vec<_> = (0..8)
            .map(|s| {
                let mat = if s % 3 == 0 { &b } else { &a };
                let req = SolveRequest::new(mat.clone(), random_rhs(mat.nrows(), s))
                    .tolerance(1e-8)
                    .t_max(60);
                let t = service.submit(req).unwrap();
                clock.advance(Duration::from_millis(s % 2));
                if s % 2 == 0 {
                    service.process_batch();
                }
                t
            })
            .collect();
        service.drain();
        tickets
            .into_iter()
            .map(|t| match service.take(t) {
                TicketState::Ready(RequestStatus::Completed(r)) => (r.x, r.relres, r.converged),
                other => panic!("expected completion, got {other:?}"),
            })
            .collect::<Vec<_>>()
    };

    let undefended = run(None);
    let defended = run(Some(ResilienceOptions::default()));
    assert_eq!(undefended, defended, "defended-but-unattacked path changed the numerics");
}
