//! Fault-injection integration tests: seeded failures, structured outcomes.
//!
//! Two layers:
//!
//! * a fault matrix fuzzed through the harness — every fault axis
//!   (straggler, team crash, corrupted write, dropped write) across write
//!   modes, stop criteria, methods and residual flavours, under several
//!   virtual-scheduler seeds. The oracle demands a *structured* ending for
//!   every interleaving: finite iterate, `Degraded` outcome, non-empty
//!   fault log, no hang (enforced by the deterministic scheduler's
//!   deadlock panic plus the defended wall-clock budget);
//! * the acceptance scenario of the resilience layer — one grid team
//!   killed *and* one racy correction write corrupted in the same solve,
//!   replayed bit-identically, with the surviving hierarchy still reducing
//!   the residual by three orders of magnitude.
//!
//! Replay a matrix failure with the printed `HARNESS_SEED=… HARNESS_CASE=…`
//! command (see `docs/robustness.md`).

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{
    solve_async_faulted, AdditiveMethod, AsyncOptions, MgOptions, MgSetup, RecoveryOptions,
    ResComp, SolveOutcome, StopCriterion, WriteMode,
};
use asyncmg_harness::{fingerprint_run, run_fuzz, seeds_from_env, FaultAxis, FuzzCase, Oracle};
use asyncmg_problems::rhs::random_rhs;
use asyncmg_problems::stencil::laplacian_7pt;
use asyncmg_telemetry::{FaultKind, TelemetryProbe};
use asyncmg_threads::{Corruption, Fault, FaultPlan, VirtualSched};

/// The fault matrix: each injected-fault axis crossed with the solver
/// dimensions it interacts with (write path, stop criterion, method,
/// residual flavour). 20 configurations.
fn fault_matrix() -> Vec<FuzzCase> {
    let base = FuzzCase::base();
    let axes = [FaultAxis::Straggler, FaultAxis::Crash, FaultAxis::Corrupt, FaultAxis::Drop];
    let mut cases = Vec::new();
    for fault in axes {
        cases.push(FuzzCase { fault, ..base });
        cases.push(FuzzCase { fault, write: WriteMode::Atomic, ..base });
        cases.push(FuzzCase { fault, criterion: StopCriterion::Two, ..base });
        cases.push(FuzzCase { fault, method: AdditiveMethod::Afacx, ..base });
        cases.push(FuzzCase { fault, res_comp: ResComp::ResidualBased, ..base });
    }
    cases
}

/// Residual bar per axis. Suppressed or slowed corrections still converge;
/// a crashed team or systematically dropped writes only guarantee
/// boundedness (the structural checks — Degraded outcome, finite iterate,
/// non-empty fault log — always apply).
fn oracle_for(case: &FuzzCase) -> Oracle {
    let max_relres = match case.fault {
        FaultAxis::Straggler | FaultAxis::Corrupt => Some(0.5),
        _ => None,
    };
    Oracle { max_relres }
}

#[test]
fn fault_matrix_ends_structurally_across_seeds() {
    let cases = fault_matrix();
    let seeds = seeds_from_env(4);
    match run_fuzz(&cases, &seeds, oracle_for) {
        Ok(out) => {
            // 20 cases × 4 seeds unless narrowed via HARNESS_* env vars.
            let narrowed = std::env::var("HARNESS_SEED").is_ok()
                || std::env::var("HARNESS_CASE").is_ok()
                || std::env::var("HARNESS_FUZZ_SEEDS").is_ok();
            assert!(
                narrowed || out.runs >= 64,
                "fault smoke bar: expected >= 64 runs, did {}",
                out.runs
            );
        }
        Err(report) => panic!("{report}"),
    }
}

#[test]
fn fault_runs_replay_bit_identically() {
    for fault in [FaultAxis::Crash, FaultAxis::Corrupt, FaultAxis::Drop] {
        let case = FuzzCase { fault, ..FuzzCase::base() };
        let a = case.run(7);
        let b = case.run(7);
        assert_eq!(a.fingerprint, b.fingerprint, "replay of {} diverged", case.label());
        assert_eq!(a.decisions, b.decisions);
        let other = case.run(8);
        // Different schedule seed ⇒ different interleaving; for the
        // probabilistic drop axis even the injected faults differ.
        assert_eq!(other.result.outcome, SolveOutcome::Degraded);
    }
}

/// The acceptance scenario: a seeded plan kills one grid team and corrupts
/// one racy correction write. The solve must end structurally (Degraded,
/// within the defended wall-clock budget, never a hang or NaN), log the
/// crash and the quarantine of the corrupted level, and still reduce the
/// residual by ≥ 3 orders of magnitude with the surviving grids — twice,
/// bit-identically.
#[test]
fn killed_team_and_corrupted_write_degrade_deterministically() {
    let a = laplacian_7pt(6, 6, 6);
    let h = build_hierarchy(a, &AmgOptions::default());
    let setup = MgSetup::new(h, MgOptions::default());
    assert_eq!(setup.n_levels(), 3, "scenario expects a 3-level hierarchy");
    let b = random_rhs(setup.n(), 3);

    // Quarantine on the first strike: the single corrupted write must be
    // enough to retire its level.
    let mut recovery = RecoveryOptions::defended();
    recovery.quarantine_after = 1;
    let mut opts = AsyncOptions::default();
    opts.t_max = 150;
    opts.n_threads = 4;
    opts.recovery = recovery;

    // Kill the middle grid's team early; corrupt the coarsest grid's write.
    let plan = FaultPlan::new(0xFA17)
        .with(Fault::Crash { team: 1, at_round: 2 })
        .with(Fault::CorruptWrite { grid: 2, at_round: 1, kind: Corruption::Nan });

    let run = |sched_seed: u64| {
        let sched = VirtualSched::new(sched_seed);
        let mut probe = TelemetryProbe::with_threads(opts.n_threads);
        let result = solve_async_faulted(&setup, &b, &opts, &probe, Some(&sched), Some(&plan));
        let trace = probe.take_trace();
        let fp = fingerprint_run(&result, &trace);
        (result, fp)
    };

    let (r1, fp1) = run(42);
    let (r2, fp2) = run(42);

    // Bit-identical replay, faults included.
    assert_eq!(fp1, fp2, "faulted solve must replay bit-identically");
    assert_eq!(r1.relres.to_bits(), r2.relres.to_bits());

    // Structured ending: degraded, not faulted (so the wall-clock budget
    // was not hit), with the injected faults and the recovery response in
    // the log.
    assert_eq!(r1.outcome, SolveOutcome::Degraded);
    assert!(r1.relres.is_finite());
    assert!(r1.x.iter().all(|v| v.is_finite()));
    let has = |pred: &dyn Fn(&FaultKind) -> bool| r1.faults.iter().any(|f| pred(&f.kind));
    assert!(has(&|k| matches!(k, FaultKind::TeamCrash { team: 1 })));
    assert!(has(&|k| matches!(k, FaultKind::WriteCorrupted { grid: 2 })));
    assert!(has(&|k| matches!(k, FaultKind::GuardTripped { grid: 2 })));
    assert!(
        has(&|k| matches!(k, FaultKind::Quarantined { grid: 2 })),
        "corrupted level must be quarantined: {:?}",
        r1.faults
    );

    // The crashed team stopped early; the quarantined grid took its one
    // strike and was retired; the fine grid finished its budget.
    assert!(r1.grid_corrections[1] < 150, "crashed grid: {:?}", r1.grid_corrections);
    assert_eq!(r1.grid_corrections[0], 150, "surviving fine grid: {:?}", r1.grid_corrections);

    // The surviving hierarchy still reduces the residual by three orders
    // of magnitude.
    assert!(r1.relres <= 1e-3, "surviving grids reduced relres to only {}", r1.relres);
}
