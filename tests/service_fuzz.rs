//! Seeded fuzzing of the solver service: every seeded request mix must pass
//! the service oracle, and replaying a seed must reproduce the entire run —
//! outcomes, cache events, telemetry fingerprints — bit for bit. The
//! service reads time only from a virtual clock the axis drives, so there
//! is no wall-clock nondeterminism to hide behind.

use asyncmg_harness::{check_service, ServiceAxis};
use proptest::prelude::*;

#[test]
fn default_axis_passes_the_oracle_over_fixed_seeds() {
    let axis = ServiceAxis::default();
    for seed in 0..8 {
        let run = axis.run(seed);
        check_service(&axis, &run).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn replay_is_bit_identical_across_axis_shapes() {
    let shapes = [
        ServiceAxis::default(),
        ServiceAxis { batch_window: 1, ..Default::default() },
        ServiceAxis { deadline_every: 0, n_requests: 12, ..Default::default() },
        ServiceAxis { cache_capacity: 1, n_matrices: 4, ..Default::default() },
    ];
    for axis in shapes {
        let a = axis.run(0x5EED);
        let b = axis.run(0x5EED);
        assert_eq!(a.fingerprint, b.fingerprint, "{} replay diverged", axis.label());
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn deadline_free_mixes_complete_every_request() {
    let axis = ServiceAxis { deadline_every: 0, n_requests: 10, ..Default::default() };
    let run = axis.run(3);
    check_service(&axis, &run).unwrap();
    assert_eq!(run.stats.completed, 10);
    assert_eq!(run.stats.rejected_deadline, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seed: the oracle holds and the run replays bit-identically.
    #[test]
    fn any_seed_passes_and_replays(seed in 0u64..(1u64 << 48)) {
        let axis = ServiceAxis { n_requests: 12, ..Default::default() };
        let run = axis.run(seed);
        prop_assert!(check_service(&axis, &run).is_ok());
        let replay = axis.run(seed);
        prop_assert_eq!(run.fingerprint, replay.fingerprint);
    }
}
