//! Workspace-level integration tests of the solver service (the PR-6
//! acceptance scenarios): batching is bit-transparent under concurrency,
//! the hierarchy cache evicts under its cap, and deadline admission is
//! deterministic on a virtual clock.

use std::sync::Arc;
use std::time::Duration;

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{MgOptions, MgSetup, NoopProbe};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_service::{
    Rejection, RequestStatus, ServiceOptions, SolveRequest, SolverService, TicketState,
};
use asyncmg_sparse::Csr;
use asyncmg_threads::VirtualClock;
use proptest::prelude::*;

/// The reference: the sequential single-RHS multiplicative solver on a
/// setup built with the same (default) options the service uses.
fn solo_solve(a: &Csr, b: &[f64], t_max: usize, tol: f64) -> Vec<f64> {
    let setup =
        MgSetup::new(build_hierarchy(a.clone(), &AmgOptions::default()), MgOptions::default());
    asyncmg_core::solve_mult_probed(&setup, b, t_max, Some(tol), &NoopProbe).x
}

/// The headline acceptance scenario: many threads hammer one service with
/// same-matrix requests; every answer must be bit-identical to a solo
/// solve of that request, no matter which thread's `process_batch`
/// dispatched it or how many neighbours were coalesced in.
#[test]
fn concurrent_same_matrix_requests_match_solo_solves_bitwise() {
    let a = Arc::new(laplacian_7pt(6, 6, 6));
    let service = Arc::new(SolverService::new(ServiceOptions::default()));
    let n_threads = 4;

    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let a = a.clone();
            let service = service.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for s in 0..3u64 {
                    let seed = t * 10 + s;
                    let b = random_rhs(a.nrows(), seed);
                    let req = SolveRequest::new(a.clone(), b.clone()).tolerance(1e-8).t_max(60);
                    let r = service.solve(req).expect("solve must succeed");
                    got.push((seed, b, r));
                }
                got
            })
        })
        .collect();

    for h in handles {
        for (seed, b, r) in h.join().unwrap() {
            assert!(r.converged, "seed {seed} did not converge (relres {})", r.relres);
            let reference = solo_solve(&a, &b, 60, 1e-8);
            assert_eq!(r.x, reference, "seed {seed}: batched x diverged from solo solve");
        }
    }

    let stats = service.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.cache_misses, 1, "one matrix must build exactly once");
    assert!(stats.cache_hits >= 1);
}

#[test]
fn cache_evicts_oldest_hierarchy_under_size_cap() {
    let opts = ServiceOptions { cache_capacity: 2, ..Default::default() };
    let service = SolverService::new(opts);
    let mats: Vec<Arc<Csr>> = (4..8).map(|nx| Arc::new(laplacian_7pt(nx, 4, 4))).collect();

    for m in &mats {
        let r = service.solve(SolveRequest::new(m.clone(), random_rhs(m.nrows(), 1))).unwrap();
        assert!(!r.cache_hit, "distinct matrices must all miss");
    }
    assert_eq!(service.cached_hierarchies(), 2);
    assert_eq!(service.stats().evictions, 2);

    // The two oldest were evicted: re-solving them misses again, the two
    // youngest still hit.
    assert!(
        !service
            .solve(SolveRequest::new(mats[0].clone(), random_rhs(mats[0].nrows(), 2)))
            .unwrap()
            .cache_hit
    );
    assert!(
        service
            .solve(SolveRequest::new(mats[3].clone(), random_rhs(mats[3].nrows(), 2)))
            .unwrap()
            .cache_hit
    );
}

/// Deadline admission on a virtual clock is exact: a request expires if and
/// only if the clock was advanced past its deadline, with the rejection
/// carrying the precise virtual timestamps.
#[test]
fn deadline_miss_rejection_is_deterministic_under_virtual_clock() {
    for _replay in 0..3 {
        let clock = Arc::new(VirtualClock::new());
        let service = SolverService::with_clock(ServiceOptions::default(), clock.clone());
        let a = Arc::new(laplacian_7pt(5, 5, 5));
        let b = random_rhs(a.nrows(), 9);

        clock.advance(Duration::from_millis(10));
        let tight = service
            .submit(SolveRequest::new(a.clone(), b.clone()).deadline(Duration::from_millis(2)))
            .unwrap();
        let loose = service
            .submit(SolveRequest::new(a.clone(), b.clone()).deadline(Duration::from_secs(1)))
            .unwrap();

        clock.advance(Duration::from_millis(3));
        service.drain();

        match service.take(tight) {
            TicketState::Ready(RequestStatus::Rejected(Rejection::DeadlineExpired {
                deadline_ns,
                now_ns,
            })) => {
                assert_eq!(deadline_ns, 12_000_000);
                assert_eq!(now_ns, 13_000_000);
            }
            other => panic!("expected a deadline rejection, got {other:?}"),
        }
        match service.take(loose) {
            TicketState::Ready(RequestStatus::Completed(r)) => assert!(r.relres.is_finite()),
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(service.stats().rejected_deadline, 1);
    }
}

/// Regression for unbounded memory growth: a caller that submits and
/// drains forever without ever `take`-ing outcomes must not grow the
/// resolved store without bound. The store evicts oldest-first and counts
/// what it dropped.
#[test]
fn resolved_store_stays_bounded_when_outcomes_are_never_taken() {
    let opts = ServiceOptions { resolved_capacity: 8, ..Default::default() };
    let service = SolverService::new(opts);
    let a = Arc::new(laplacian_7pt(4, 4, 4));

    let tickets: Vec<_> = (0..40)
        .map(|s| {
            let t = service
                .submit(SolveRequest::new(a.clone(), random_rhs(a.nrows(), s)).t_max(5))
                .unwrap();
            service.drain();
            t
        })
        .collect();

    assert_eq!(service.stats().resolved_evicted, 32);
    // Oldest-first: evicted tickets read Claimed, the newest 8 stay Ready.
    for t in &tickets[..32] {
        assert_eq!(service.status(*t), TicketState::Claimed);
    }
    for t in &tickets[32..] {
        assert!(matches!(service.status(*t), TicketState::Ready(_)));
    }
    // The service is still fully functional afterwards.
    let r = service
        .solve(SolveRequest::new(a.clone(), random_rhs(a.nrows(), 99)).tolerance(1e-8))
        .unwrap();
    assert!(r.converged);
}

/// The lock-discipline acceptance scenario: while one thread is inside a
/// long `process_batch` solve, other threads can submit, poll status, and
/// claim outcomes without stalling behind the numeric work — the solve
/// runs under the cache entry's lock, not the service mutex.
#[test]
fn submits_and_status_progress_while_a_long_solve_is_in_flight() {
    let big = Arc::new(laplacian_7pt(18, 18, 18));
    let small = Arc::new(laplacian_7pt(4, 4, 4));
    let service = Arc::new(SolverService::new(ServiceOptions::default()));

    let slow = service
        .submit(SolveRequest::new(big.clone(), random_rhs(big.nrows(), 0)).t_max(200))
        .unwrap();
    let solver_thread = {
        let service = service.clone();
        std::thread::spawn(move || service.process_batch())
    };

    // While the big solve runs (or at worst just after), this thread keeps
    // submitting and polling. None of these calls can deadlock: they only
    // contend on the admission/publication mutex.
    let mut smalls = Vec::new();
    for s in 0..8 {
        let t = service
            .submit(SolveRequest::new(small.clone(), random_rhs(small.nrows(), s)).t_max(10))
            .unwrap();
        // Status of an in-flight or queued ticket is well-defined mid-solve.
        assert!(matches!(service.status(t), TicketState::Queued));
        let _ = service.status(slow);
        smalls.push(t);
    }
    assert_eq!(solver_thread.join().unwrap(), 1);
    service.drain();

    assert!(matches!(service.take(slow), TicketState::Ready(RequestStatus::Completed(_))));
    for t in smalls {
        assert!(matches!(service.take(t), TicketState::Ready(RequestStatus::Completed(_))));
    }
}

/// Deterministic variant of the same scenario: a fixed interleaving of
/// submits and dispatches on the virtual clock — including submissions that
/// land while earlier tickets are dispatched — replays bit-identically.
#[test]
fn interleaved_submit_dispatch_replays_bit_identically() {
    let run = || {
        let clock = Arc::new(VirtualClock::new());
        let service = SolverService::with_clock(ServiceOptions::default(), clock.clone());
        let a = Arc::new(laplacian_7pt(5, 5, 5));
        let b = Arc::new(laplacian_7pt(6, 5, 5));

        let mut tickets = Vec::new();
        for s in 0..3 {
            tickets.push(
                service
                    .submit(SolveRequest::new(a.clone(), random_rhs(a.nrows(), s)).t_max(20))
                    .unwrap(),
            );
        }
        service.process_batch();
        // Mid-stream: more work arrives after the first dispatch resolved.
        for s in 3..6 {
            tickets.push(
                service
                    .submit(SolveRequest::new(b.clone(), random_rhs(b.nrows(), s)).t_max(20))
                    .unwrap(),
            );
            clock.advance(Duration::from_millis(1));
        }
        service.drain();

        tickets
            .into_iter()
            .map(|t| match service.take(t) {
                TicketState::Ready(RequestStatus::Completed(r)) => r.x,
                other => panic!("expected completion, got {other:?}"),
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "interleaved run diverged across replays");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any batch of same-matrix requests: each coalesced answer is
    /// bit-identical to solving that right-hand side alone, for any batch
    /// width and heterogeneous cycle budgets.
    #[test]
    fn batched_multi_rhs_matches_per_rhs_bitwise(
        nrhs in 1usize..5,
        rhs_seed in 0u64..1000,
        t_max in 3usize..12,
    ) {
        let a = Arc::new(laplacian_7pt(5, 4, 4));
        let service = SolverService::new(ServiceOptions::default());

        let mut submitted = Vec::new();
        for c in 0..nrhs {
            let b = random_rhs(a.nrows(), rhs_seed + c as u64);
            // Heterogeneous budgets: column c runs t_max + c cycles.
            let req = SolveRequest::new(a.clone(), b.clone())
                .tolerance(1e-10)
                .t_max(t_max + c);
            submitted.push((service.submit(req).unwrap(), b, t_max + c));
        }
        service.drain();

        for (ticket, b, budget) in submitted {
            let r = match service.take(ticket) {
                TicketState::Ready(RequestStatus::Completed(r)) => r,
                other => panic!("expected completion, got {other:?}"),
            };
            prop_assert_eq!(r.batch_size, nrhs);
            let reference = solo_solve(&a, &b, budget, 1e-10);
            prop_assert_eq!(r.x, reference);
        }
    }
}
