//! Seeded fuzz matrix over the sharded execution model: shard count ×
//! network profile × fault plan, every run under a seeded `VirtualSched`
//! and `VirtualTransport` and checked by the conservation-aware oracle.
//!
//! `HARNESS_FUZZ_SEEDS=<n>` widens the seed sweep (CI runs 8 → 13 axes ×
//! 8 seeds = 104 runs); `HARNESS_SEED=<n>` pins one seed for replay and
//! `HARNESS_CASE=<substring>` filters axes by label.

use asyncmg_harness::MatrixFamily;
use asyncmg_harness::{
    case_filter, check_sharded, seeds_from_env, FaultAxis, NetAxis, RecoveryAxis, ShardAxis,
};

/// The fuzz matrix: every network profile at the base configuration, shard
/// counts 1/3/4, every fault axis over a lossy fabric, and one
/// bigger-matrix axis. Convergence demands are per-axis: clean fabrics
/// must converge, lossy or faulted ones must stay finite and conservative.
fn axes() -> Vec<ShardAxis> {
    let base = ShardAxis::base();
    let mut axes = Vec::new();
    // Every network profile converges at the base budget, lossy ones
    // included — the epoch-tagged reduction never waits on a lost message.
    for net in NetAxis::ALL {
        axes.push(ShardAxis { net, ..base });
    }
    // More shards mean slower information flow per epoch; the bounds come
    // from measured worst cases with an order of magnitude of margin.
    axes.push(ShardAxis { n_shards: 1, ..base });
    axes.push(ShardAxis { n_shards: 3, max_relres: Some(1e-1), ..base });
    axes.push(ShardAxis { n_shards: 4, max_relres: Some(5e-2), ..base });
    for fault in [FaultAxis::Straggler, FaultAxis::Crash, FaultAxis::Corrupt, FaultAxis::Drop] {
        // A crashed shard strands its error segment, so crash runs are
        // bounded only by finiteness and conservation.
        let max_relres = match fault {
            FaultAxis::Crash => None,
            FaultAxis::Drop => Some(1e-2),
            _ => Some(1e-3),
        };
        axes.push(ShardAxis { net: NetAxis::Drop, fault, max_relres, ..base });
    }
    axes.push(ShardAxis {
        family: MatrixFamily::TwentySevenPt(6),
        n_shards: 3,
        t_max: 60,
        max_relres: Some(1e-1),
        ..base
    });
    // The self-healing axes: a deterministic mid-solve crash of shard 1
    // exercises detection, eviction and (on Adopt) row adoption, across
    // clean and lossy fabrics and across detector thresholds. The oracle
    // checks the recovery report against the axis; convergence is demanded
    // only where adoption restores full coverage with budget to spare.
    let heal = ShardAxis { t_max: 400, tolerance: Some(1e-6), ..base };
    axes.push(ShardAxis {
        n_shards: 2,
        recovery: RecoveryAxis::Adopt { crash_epoch: 3, threshold: 8 },
        max_relres: Some(1e-6),
        ..heal
    });
    axes.push(ShardAxis {
        n_shards: 4,
        net: NetAxis::Drop,
        recovery: RecoveryAxis::Adopt { crash_epoch: 6, threshold: 12 },
        max_relres: Some(1e-6),
        ..heal
    });
    axes.push(ShardAxis {
        n_shards: 3,
        net: NetAxis::Lossy,
        recovery: RecoveryAxis::Adopt { crash_epoch: 10, threshold: 16 },
        max_relres: None,
        ..heal
    });
    axes.push(ShardAxis {
        n_shards: 3,
        net: NetAxis::Drop,
        recovery: RecoveryAxis::Detect { crash_epoch: 3, threshold: 8 },
        max_relres: None,
        ..heal
    });
    axes
}

#[test]
fn shard_fuzz_matrix() {
    let seeds = seeds_from_env(4);
    let filter = case_filter();
    let mut runs = 0usize;
    for axis in axes() {
        let label = axis.label();
        if let Some(f) = &filter {
            if !label.contains(f.as_str()) {
                continue;
            }
        }
        for &seed in &seeds {
            runs += 1;
            let run = axis.run(seed);
            if let Err(v) = check_sharded(&axis, &run) {
                // Shrink: smallest failing seed gives the tightest replay.
                let smallest = (0..seed)
                    .find(|&s| check_sharded(&axis, &axis.run(s)).is_err())
                    .unwrap_or(seed);
                panic!(
                    "shard fuzz failure: {} — {}\n  first failing seed: {seed}\n  smallest failing seed: {smallest}\n  reproduce with:\n    HARNESS_SEED={smallest} HARNESS_CASE='{label}' cargo test -p asyncmg-harness --test shard_fuzz -- --nocapture",
                    v.case, v.reason
                );
            }
        }
    }
    assert!(runs > 0, "filter excluded every axis");
    println!("shard fuzz: {} axes × {} seeds = {runs} runs, all green", axes().len(), seeds.len());
}

/// The fingerprint must be stable under replay for every axis of the
/// matrix (one seed here; the determinism suite stresses profiles more).
#[test]
fn every_axis_replays_identically() {
    for axis in axes() {
        let a = axis.run(1);
        let b = axis.run(1);
        assert_eq!(a.fingerprint, b.fingerprint, "{}", axis.label());
    }
}
