//! Self-healing sharded solves (ISSUE 9 acceptance criteria).
//!
//! * A solve whose shard crashes mid-run still reaches relres ≤ 1e-6 at 2
//!   and 4 shards: the hub's failure detector declares the death, evicts
//!   the zombie, and a surviving neighbor adopts the rows, warm-started
//!   from the hub's last checkpoint.
//! * The whole recovery pipeline — detection, adoption, ack + bounded
//!   retransmission — replays bit-identically from one seed pair under
//!   `VirtualSched` and a lossy `VirtualTransport`.
//! * Row adoption preserves halo exactness: the rewired `ShardMap` is
//!   indistinguishable from a fresh map over the merged partition
//!   (property-based, arbitrary partitions and adoption chains).
//! * `Solver::resilient` degrades through sharded rungs
//!   (`Sharded{2} → Sharded{1} → …`) via the `ShardedRungDriver`.
//! * Recovery events and the retransmit counter surface in the telemetry
//!   trace JSON.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{MgOptions, MgSetup, RetryPolicy, Rung, Solver};
use asyncmg_harness::{check_sharded, NetAxis, RecoveryAxis, ShardAxis};
use asyncmg_problems::rhs::random_rhs;
use asyncmg_problems::stencil::laplacian_7pt;
use asyncmg_shard::{
    sharded_ladder, ShardMap, ShardRecovery, ShardedExt, ShardedRungDriver, VirtualTransport,
};
use asyncmg_threads::{Fault, FaultPlan, VirtualClock, VirtualSched};
use proptest::prelude::*;
use std::ops::Range;

fn setup_7pt6() -> MgSetup {
    let a = laplacian_7pt(6, 6, 6);
    MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default())
}

/// The healing axis: shard 1 crashes at epoch 3 and never returns; the
/// detector (threshold 8 epochs of fabric silence) declares it dead and a
/// neighbor adopts its rows.
fn heal_axis(n_shards: usize, net: NetAxis) -> ShardAxis {
    ShardAxis {
        n_shards,
        net,
        t_max: 400,
        tolerance: Some(1e-6),
        max_relres: Some(1e-6),
        recovery: RecoveryAxis::Adopt { crash_epoch: 3, threshold: 8 },
        ..ShardAxis::base()
    }
}

/// Crash-at-epoch acceptance: the one-shard-crashed solve reaches
/// relres ≤ 1e-6 at 2 and 4 shards, on clean and lossy fabrics, with the
/// crashed rank never returning — detection plus adoption carry the solve.
#[test]
fn crashed_shard_solve_reaches_tolerance() {
    for n_shards in [2, 4] {
        for net in [NetAxis::Ideal, NetAxis::Drop] {
            for seed in [1, 7] {
                let axis = heal_axis(n_shards, net);
                let run = axis.run(seed);
                if let Err(v) = check_sharded(&axis, &run) {
                    panic!("{} seed {seed}: {}", v.case, v.reason);
                }
                let r = &run.result;
                assert!(
                    r.relres <= 1e-6,
                    "s{n_shards} {net:?} seed {seed}: relres {} above 1e-6",
                    r.relres
                );
                assert_eq!(r.recovery.dead_shards, vec![1], "exactly the crashed shard dies");
                assert!(
                    r.recovery.adoptions.iter().any(|&(dead, _)| dead == 1),
                    "shard 1's rows were adopted"
                );
                // The crashed rank exits at its crash epoch and stays gone.
                assert!(r.shard_epochs[1] <= 3, "crashed shard ran past its crash epoch");
            }
        }
    }
}

/// Detection without adoption still terminates cleanly: the dead shard's
/// rows freeze at the hub's last checkpoint, so convergence is not
/// demanded, but the death is declared, the zombie evicted, and the run
/// stays finite and conservative (all checked by the oracle).
#[test]
fn detection_without_adoption_freezes_rows() {
    let axis = ShardAxis {
        n_shards: 3,
        t_max: 120,
        recovery: RecoveryAxis::Detect { crash_epoch: 3, threshold: 8 },
        max_relres: None,
        ..ShardAxis::base()
    };
    for seed in [1, 7] {
        let run = axis.run(seed);
        if let Err(v) = check_sharded(&axis, &run) {
            panic!("{} seed {seed}: {}", v.case, v.reason);
        }
        assert!(run.result.recovery.adoptions.is_empty());
    }
}

/// The full pipeline — crash, silence, declaration, eviction, adoption,
/// retransmission over a dropping fabric — is a pure function of the seed
/// pair: same seed, same fingerprint, down to the solution bits and the
/// recovery counters. The lossy fabric forces actual retransmits.
#[test]
fn recovery_replays_bit_identical_under_drops() {
    let axis = heal_axis(4, NetAxis::Drop);
    for seed in [1, 5, 23] {
        let a = axis.run(seed);
        let b = axis.run(seed);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed} replay diverged");
        assert_eq!(a.decisions, b.decisions, "seed {seed} schedule diverged");
        let kinds: Vec<&str> = a.result.faults.iter().map(|f| f.kind.name()).collect();
        assert!(kinds.contains(&"shard_declared_dead"), "seed {seed}: no death event");
        assert!(kinds.contains(&"rows_adopted"), "seed {seed}: no adoption event");
        assert!(
            a.result.recovery.retransmits > 0,
            "seed {seed}: a 20 % drop fabric must force retransmits"
        );
        assert!(a.result.recovery.acks > 0, "seed {seed}: reliable sends were never acked");
        assert!(a.result.recovery.checkpoints > 0, "seed {seed}: no checkpoints accepted");
    }
}

/// `Solver::resilient` walks the sharded degradation ladder: a budget too
/// small for the wide rung escalates to narrower ones (S → S/2 → … → 1)
/// and then falls through to the shared-memory ladder, warm-starting each
/// attempt from the best hub-assembled checkpoint.
#[test]
fn resilient_session_degrades_through_sharded_rungs() {
    let setup = setup_7pt6();
    let b = random_rhs(setup.n(), 17);
    let driver = ShardedRungDriver::default();
    let ladder = sharded_ladder(2);
    assert_eq!(ladder[0], Rung::Sharded { shards: 2 });
    assert_eq!(ladder[1], Rung::Sharded { shards: 1 });
    let report = Solver::new(&setup)
        .tolerance(1e-8)
        .t_max(8)
        .retry(RetryPolicy { max_attempts: 9, ..RetryPolicy::default() })
        .session_seed(11)
        .ladder(&ladder)
        .shard_driver(&driver)
        .resilient(&b);
    assert!(report.converged, "relres {}", report.relres);
    assert!(report.relres <= 1e-8);
    // Eight epochs cannot reach 1e-8, so the session visited (at least)
    // both sharded rungs before the shared-memory ladder finished the job.
    assert_eq!(report.attempts[0].rung, Rung::Sharded { shards: 2 });
    assert_eq!(report.attempts[1].rung, Rung::Sharded { shards: 1 });
    assert!(report.attempts.len() > 2);
    assert!(
        report.attempts[1..].iter().any(|a| a.warm_start),
        "degraded rungs warm-start from the checkpoint store"
    );
    // Seeded sessions replay bit-identically through the sharded rungs too.
    let replay = Solver::new(&setup)
        .tolerance(1e-8)
        .t_max(8)
        .retry(RetryPolicy { max_attempts: 9, ..RetryPolicy::default() })
        .session_seed(11)
        .ladder(&ladder)
        .shard_driver(&driver)
        .resilient(&b);
    assert_eq!(report.relres.to_bits(), replay.relres.to_bits());
    for (u, v) in report.x.iter().zip(&replay.x) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
}

/// Recovery surfaces in telemetry: the trace JSON carries the death and
/// adoption events plus the hub's retransmit counter.
#[test]
fn recovery_events_surface_in_trace_json() {
    let setup = setup_7pt6();
    let b = random_rhs(setup.n(), 3);
    let sched = VirtualSched::new(9);
    let net = VirtualTransport::with_profile(5, 1234, 4, 0.2);
    let clock = VirtualClock::new();
    let plan = FaultPlan::new(9).with(Fault::Crash { team: 1, at_round: 3 });
    let result = Solver::new(&setup)
        .tolerance(1e-6)
        .t_max(200)
        .sharded(4)
        .recovery(Some(ShardRecovery::default()))
        .sched(&sched)
        .clock(&clock)
        .transport(&net)
        .fault_plan(Some(&plan))
        .with_trace()
        .run(&b);
    let json = result.trace.expect("trace requested").to_json();
    assert!(json.contains("\"shard_declared_dead\""), "death event missing from trace");
    assert!(json.contains("\"rows_adopted\""), "adoption event missing from trace");
    assert!(json.contains("\"retransmits\""), "retransmit counter missing from trace");
    assert!(json.contains("\"asyncmg-trace-v5\""), "schema tag");
    assert_eq!(result.recovery.dead_shards, vec![1]);
}

/// Turns arbitrary cut positions into a partition of `0..n` into
/// contiguous ranges (same generator the halo unit tests use: the
/// stand-in `proptest` draws raw cuts, the body shapes them).
fn ranges_from_cuts(n: usize, cuts: Vec<usize>) -> Vec<Range<usize>> {
    let mut cuts: Vec<usize> = cuts.into_iter().filter(|&c| c > 0 && c < n).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut ranges = Vec::new();
    let mut start = 0;
    for c in cuts {
        ranges.push(start..c);
        start = c;
    }
    ranges.push(start..n);
    ranges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adoption preserves gather/scatter exactness for arbitrary
    /// partitions: after adopting a dead shard's rows, the live map's
    /// ghost lists, neighbor sets and halo round-trips agree exactly with
    /// a fresh `ShardMap` built over the merged partition.
    #[test]
    fn adoption_preserves_halo_exactness(
        cuts in prop::collection::vec(1usize..64, 1..5),
        dead_sel in 0usize..64,
        seed in 0u64..1000,
    ) {
        let a = laplacian_7pt(4, 4, 4);
        let ranges = ranges_from_cuts(64, cuts);
        let n_shards = ranges.len();
        prop_assume!(n_shards >= 2);
        let mut map = ShardMap::new(&a, ranges);
        let dead = dead_sel % n_shards;
        let adopter = if dead == 0 { 1 } else { dead - 1 };
        map.adopt(&a, dead, adopter);
        let fresh = ShardMap::new(&a, map.ranges().to_vec());
        let x = random_rhs(64, seed);
        let mut wire = Vec::new();
        let mut wire_fresh = Vec::new();
        for from in 0..n_shards {
            prop_assert_eq!(map.neighbors_out(from), fresh.neighbors_out(from));
            for to in (0..n_shards).filter(|&t| t != from) {
                prop_assert_eq!(map.ghost_indices(from, to), fresh.ghost_indices(from, to));
                map.gather(from, to, &x, &mut wire);
                fresh.gather(from, to, &x, &mut wire_fresh);
                prop_assert_eq!(&wire, &wire_fresh);
                // Scattering the gathered values reconstructs the sender's
                // iterate exactly at every ghost position.
                let mut y = vec![0.0; 64];
                prop_assert!(map.scatter(from, to, &wire, &mut y));
                for (&g, &v) in map.ghost_indices(from, to).iter().zip(&wire) {
                    prop_assert_eq!(y[g as usize].to_bits(), x[g as usize].to_bits());
                    prop_assert_eq!(v.to_bits(), x[g as usize].to_bits());
                }
            }
        }
        // The dead shard owns nothing and nobody needs its values.
        prop_assert!(map.range(dead).is_empty());
        prop_assert!(map.neighbors_out(dead).is_empty());
    }
}
