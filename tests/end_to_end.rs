//! End-to-end integration: every test set × every solver family converges.

use asyncmg_apps::paper_setup;
use asyncmg_core::additive::{solve_additive_probed, AdditiveMethod};
use asyncmg_core::asynchronous::{
    solve_async_probed, AsyncOptions, ResComp, StopCriterion, WriteMode,
};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::parallel_mult::solve_mult_threaded_probed;
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, TestSet};

/// Cycle budget and tolerance per test set. Elasticity is the paper's
/// hardest case: Table I's sync Mult needs 190 V-cycles there, i.e. a
/// convergence factor around 0.9, so it gets a far larger budget.
fn budget(set: TestSet) -> (usize, f64) {
    match set {
        TestSet::Elasticity => (250, 1e-2),
        _ => (60, 1e-6),
    }
}

/// `AsyncOptions` is `#[non_exhaustive]`: build each variant off the default.
fn async_opts(f: impl FnOnce(&mut AsyncOptions)) -> AsyncOptions {
    let mut o = AsyncOptions::default();
    f(&mut o);
    o
}

#[test]
fn mult_converges_on_all_test_sets() {
    for set in TestSet::all() {
        let (cycles, tol) = budget(set);
        let s = paper_setup(set, 8);
        let b = random_rhs(s.n(), 1);
        let res = solve_mult_probed(&s, &b, cycles, None, &NoopProbe);
        assert!(res.final_relres() < tol, "{}: {}", set.name(), res.final_relres());
    }
}

#[test]
fn sync_multadd_converges_on_all_test_sets() {
    for set in TestSet::all() {
        let (cycles, tol) = budget(set);
        let s = paper_setup(set, 8);
        let b = random_rhs(s.n(), 2);
        let res =
            solve_additive_probed(&s, AdditiveMethod::Multadd, &b, cycles + 20, None, &NoopProbe);
        assert!(res.final_relres() < tol * 10.0, "{}: {}", set.name(), res.final_relres());
    }
}

#[test]
fn async_multadd_converges_on_all_test_sets() {
    for set in TestSet::all() {
        let (cycles, tol) = budget(set);
        let s = paper_setup(set, 8);
        let b = random_rhs(s.n(), 3);
        let opts = async_opts(|o| {
            o.t_max = cycles + 20;
            o.n_threads = 4;
        });
        let res = solve_async_probed(&s, &b, &opts, &NoopProbe);
        assert!(res.relres < tol * 100.0, "{}: {}", set.name(), res.relres);
    }
}

#[test]
fn afacx_converges_on_laplacians() {
    for set in [TestSet::SevenPt, TestSet::TwentySevenPt] {
        let s = paper_setup(set, 8);
        let b = random_rhs(s.n(), 4);
        let res = solve_additive_probed(&s, AdditiveMethod::Afacx, &b, 80, None, &NoopProbe);
        assert!(res.final_relres() < 1e-5, "{}: {}", set.name(), res.final_relres());
    }
}

#[test]
fn all_async_variants_converge_on_7pt() {
    let s = paper_setup(TestSet::SevenPt, 10);
    let b = random_rhs(s.n(), 5);
    let base = |o: &mut AsyncOptions| {
        o.t_max = 30;
        o.n_threads = 4;
    };
    let variants: Vec<(&str, AsyncOptions)> = vec![
        ("lock local", async_opts(base)),
        (
            "atomic local",
            async_opts(|o| {
                base(o);
                o.write = WriteMode::Atomic;
            }),
        ),
        (
            // Global-res is scheduler-sensitive (Section IV documents that
            // delayed residual components can make it diverge); the
            // single-thread run pins the code path deterministically.
            "lock global",
            async_opts(|o| {
                base(o);
                o.res_comp = ResComp::Global;
                o.n_threads = 1;
            }),
        ),
        (
            "r-multadd",
            async_opts(|o| {
                base(o);
                o.write = WriteMode::Atomic;
                o.res_comp = ResComp::ResidualBased;
            }),
        ),
        (
            "criterion 2",
            async_opts(|o| {
                base(o);
                o.criterion = StopCriterion::Two;
            }),
        ),
        (
            "sync",
            async_opts(|o| {
                base(o);
                o.sync = true;
            }),
        ),
    ];
    for (name, opts) in variants {
        let res = solve_async_probed(&s, &b, &opts, &NoopProbe);
        assert!(res.relres < 1e-3, "{name}: {}", res.relres);
    }
}

#[test]
fn threaded_and_sequential_mult_agree_end_to_end() {
    let s = paper_setup(TestSet::TwentySevenPt, 8);
    let b = random_rhs(s.n(), 6);
    let seq = solve_mult_probed(&s, &b, 10, None, &NoopProbe);
    let par = solve_mult_threaded_probed(&s, &b, 3, 10, None, &NoopProbe);
    let denom = seq.final_relres().max(1e-300);
    assert!(
        ((par.relres - seq.final_relres()) / denom).abs() < 1e-8,
        "threaded {} vs sequential {}",
        par.relres,
        seq.final_relres()
    );
}

#[test]
fn solution_vector_actually_solves_the_system() {
    // Not just residual bookkeeping: verify x against a manufactured
    // solution.
    let s = paper_setup(TestSet::SevenPt, 8);
    let xs = random_rhs(s.n(), 7);
    let mut b = vec![0.0; s.n()];
    s.a(0).spmv(&xs, &mut b);
    let opts = async_opts(|o| {
        o.t_max = 120;
        o.n_threads = 4;
    });
    let res = solve_async_probed(&s, &b, &opts, &NoopProbe);
    let err: f64 = res.x.iter().zip(&xs).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let norm: f64 = xs.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err / norm < 1e-4, "relative error {}", err / norm);
}
