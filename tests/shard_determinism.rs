//! Deterministic replay and cross-model agreement for the sharded
//! execution model (ISSUE 8 acceptance criteria).
//!
//! * Same `(axis, seed)` under `VirtualSched` + `VirtualTransport` replays
//!   bit-identically — fingerprint equality — including under message drop
//!   and `FaultPlan` crash injection.
//! * The sharded solver converges to relres ≤ 1e-6 on the 27-point and
//!   elasticity families at 1, 2 and 4 shards.
//! * Converged sharded solutions agree with the shared-memory
//!   `solve_mult_probed` reference (and with the async solver across all
//!   write × res-comp flavours) to schedule-independent bounds.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{
    solve_async_probed, solve_mult_probed, AsyncOptions, MgOptions, MgSetup, ResComp, Solver,
    StopCriterion, WriteMode,
};
use asyncmg_harness::{check_sharded, FaultAxis, MatrixFamily, NetAxis, ShardAxis};
use asyncmg_problems::rhs::random_rhs;
use asyncmg_shard::ShardedExt;
use asyncmg_telemetry::NoopProbe;

fn setup_for(family: MatrixFamily) -> MgSetup {
    let a = match family {
        MatrixFamily::SevenPt(n) => asyncmg_problems::stencil::laplacian_7pt(n, n, n),
        MatrixFamily::TwentySevenPt(n) => asyncmg_problems::stencil::laplacian_27pt(n, n, n),
        MatrixFamily::Elasticity(n) => asyncmg_problems::elasticity::elasticity_beam(
            n,
            2,
            2,
            [n as f64, 1.0, 1.0],
            Default::default(),
        ),
    };
    let aopts = AmgOptions { num_functions: family.num_functions(), ..AmgOptions::default() };
    let mut mg = MgOptions::default();
    if matches!(family, MatrixFamily::Elasticity(_)) {
        // Point Jacobi diverges on elasticity; the repo's elasticity
        // configuration (see examples/elasticity_beam.rs) uses ℓ1-Jacobi
        // and gentler interpolant smoothing.
        mg.smoother = asyncmg_smoothers::SmootherKind::L1Jacobi;
        mg.interp_omega = 0.5;
    }
    MgSetup::new(build_hierarchy(a, &aopts), mg)
}

/// Same seed ⇒ same bits, across network and fault profiles; the replay
/// hash covers solution bits, reductions, message counters and fault kinds.
#[test]
fn same_seed_replays_bit_identical() {
    let profiles = [
        (NetAxis::Ideal, FaultAxis::None),
        (NetAxis::Reorder, FaultAxis::None),
        (NetAxis::Drop, FaultAxis::None),
        (NetAxis::Drop, FaultAxis::Crash),
        (NetAxis::Lossy, FaultAxis::Crash),
        (NetAxis::Lossy, FaultAxis::Corrupt),
    ];
    for (net, fault) in profiles {
        let axis = ShardAxis { net, fault, max_relres: None, t_max: 24, ..ShardAxis::base() };
        let first = axis.run(7);
        let second = axis.run(7);
        assert_eq!(
            first.fingerprint,
            second.fingerprint,
            "{}: same seed must replay bit-identically",
            axis.label()
        );
        assert_eq!(first.decisions, second.decisions, "{}: schedule differs", axis.label());
        assert_eq!(
            first.result.x,
            second.result.x,
            "{}: solutions must match to the bit",
            axis.label()
        );
        check_sharded(&axis, &first).unwrap_or_else(|v| panic!("{v:?}"));
        if net.lossy() {
            // A different seed reshuffles drops and schedule: the replay
            // hash must see it.
            let other = axis.run(8);
            assert_ne!(
                first.fingerprint,
                other.fingerprint,
                "{}: different seeds should not collide",
                axis.label()
            );
        }
    }
}

/// Acceptance: relres ≤ 1e-6 on the 27-point and elasticity families at
/// 1, 2 and 4 shards, through the production entry point
/// (`Solver::sharded`, in-process rings, OS scheduling).
#[test]
fn sharded_reaches_tolerance_at_1_2_4_shards() {
    let families = [MatrixFamily::TwentySevenPt(8), MatrixFamily::Elasticity(2)];
    for family in families {
        let setup = setup_for(family);
        let b = random_rhs(setup.n(), 11);
        for n_shards in [1usize, 2, 4] {
            let result = Solver::new(&setup).tolerance(1e-7).t_max(1000).sharded(n_shards).run(&b);
            assert!(
                result.relres <= 1e-6,
                "{family:?} at {n_shards} shards: relres {} above 1e-6 ({:?}, {} hub cycles)",
                result.relres,
                result.outcome,
                result.hub_cycles
            );
            assert!(result.stats.conserved(), "{family:?} at {n_shards} shards: counters");
            assert!(result.stopped_on_tolerance, "{family:?} at {n_shards} shards: no stop");
        }
    }
}

/// Cross-model agreement: the sharded solver, the synchronous
/// multiplicative reference and the shared-memory async solver (every
/// write × res-comp flavour) all converge to the same solution within a
/// schedule-independent 1e-3 bound.
#[test]
fn sharded_agrees_with_shared_memory_models() {
    let setup = setup_for(MatrixFamily::SevenPt(6));
    let b = random_rhs(setup.n(), 5);

    let reference = solve_mult_probed(&setup, &b, 200, Some(1e-10), &NoopProbe);
    let ref_relres = reference.history.last().copied().unwrap_or(f64::INFINITY);
    assert!(ref_relres <= 1e-10, "reference did not converge: {ref_relres}");
    let scale = reference.x.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);
    let agree = |x: &[f64], what: &str| {
        let diff = x.iter().zip(&reference.x).fold(0.0f64, |m, (&a, &r)| m.max((a - r).abs()));
        assert!(
            diff / scale <= 1e-3,
            "{what} diverges from the mult reference: relative max-abs {}",
            diff / scale
        );
    };

    for n_shards in [1usize, 2, 4] {
        let result = Solver::new(&setup).tolerance(1e-8).t_max(400).sharded(n_shards).run(&b);
        assert!(result.relres <= 1e-8, "sharded({n_shards}): {}", result.relres);
        agree(&result.x, &format!("sharded({n_shards})"));
    }

    for write in [WriteMode::Lock, WriteMode::Atomic] {
        for res_comp in [ResComp::Local, ResComp::Global, ResComp::ResidualBased] {
            let mut opts = AsyncOptions::default();
            opts.write = write;
            opts.res_comp = res_comp;
            if res_comp == ResComp::Global {
                // Global-res reads stale residual components by design and
                // carries no deep-convergence guarantee (the schedule-fuzz
                // oracle exempts it); bound it, don't compare it.
                opts.t_max = 16;
                let result = solve_async_probed(&setup, &b, &opts, &NoopProbe);
                assert!(result.relres.is_finite(), "async {write:?}/{res_comp:?} went non-finite");
                continue;
            }
            opts.t_max = 200;
            opts.criterion = StopCriterion::Tolerance {
                relres: 1e-8,
                check_every: std::time::Duration::from_micros(50),
            };
            let result = solve_async_probed(&setup, &b, &opts, &NoopProbe);
            assert!(
                result.relres <= 1e-6,
                "async {write:?}/{res_comp:?} did not converge: {}",
                result.relres
            );
            agree(&result.x, &format!("async {write:?}/{res_comp:?}"));
        }
    }
}
