//! Cross-checks between the Section III simulation models, the sequential
//! additive solvers, and the Section IV threaded implementations.

use asyncmg_apps::paper_setup;
use asyncmg_core::additive::{solve_additive_probed, AdditiveMethod};
use asyncmg_core::asynchronous::{solve_async_probed, AsyncOptions};
use asyncmg_core::models::{simulate, simulate_mean, ModelKind, ModelOptions};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, TestSet};

/// `ModelOptions` is `#[non_exhaustive]`: build each variant off the default.
fn model_opts(f: impl FnOnce(&mut ModelOptions)) -> ModelOptions {
    let mut o = ModelOptions::default();
    f(&mut o);
    o
}

#[test]
fn all_three_models_coincide_when_synchronous() {
    // With α = 1 and δ = 0 there is no asynchrony: all three models reduce
    // to the synchronous additive method.
    let s = paper_setup(TestSet::TwentySevenPt, 7);
    let b = random_rhs(s.n(), 1);
    let sync =
        solve_additive_probed(&s, AdditiveMethod::Multadd, &b, 10, None, &NoopProbe).final_relres();
    for model in [ModelKind::SemiAsync, ModelKind::FullAsyncSolution, ModelKind::FullAsyncResidual]
    {
        let opts = model_opts(|o| {
            o.model = model;
            o.alpha = 1.0;
            o.delta = 0;
            o.updates_per_grid = 10;
            o.seed = 9;
        });
        let sim = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        // The models and the solver accumulate corrections in different
        // orders, so agreement is up to floating-point roundoff.
        assert!(
            (sim.final_relres - sync).abs() < 1e-5 * sync.max(1e-30),
            "{model:?}: {} vs {}",
            sim.final_relres,
            sync
        );
    }
}

#[test]
fn convergence_degrades_gracefully_with_delay() {
    // Figure 2's qualitative claim: larger δ converges more slowly, but
    // still converges.
    let s = paper_setup(TestSet::TwentySevenPt, 7);
    let b = random_rhs(s.n(), 2);
    for delta in [0usize, 4, 16] {
        let opts = model_opts(|o| {
            o.model = ModelKind::FullAsyncSolution;
            o.alpha = 0.5;
            o.delta = delta;
            o.updates_per_grid = 20;
            o.seed = 3;
        });
        let r = simulate_mean(&s, AdditiveMethod::Multadd, &b, &opts, 5);
        // Every delay still converges well below the initial residual;
        // strict monotonicity in δ only emerges with many more runs than a
        // unit test should afford.
        assert!(r < 1e-2, "delta {delta}: relres {r}");
    }
}

#[test]
fn residual_based_no_worse_than_solution_based_at_large_delay() {
    // Figure 2: the residual-based full-async model converges faster than
    // the solution-based one for large δ.
    let s = paper_setup(TestSet::TwentySevenPt, 7);
    let b = random_rhs(s.n(), 4);
    let mk = |model| {
        model_opts(|o| {
            o.model = model;
            o.alpha = 0.1;
            o.delta = 16;
            o.updates_per_grid = 20;
            o.seed = 5;
        })
    };
    let sol = simulate_mean(&s, AdditiveMethod::Multadd, &b, &mk(ModelKind::FullAsyncSolution), 5);
    let res = simulate_mean(&s, AdditiveMethod::Multadd, &b, &mk(ModelKind::FullAsyncResidual), 5);
    assert!(res <= sol * 3.0, "residual-based ({res}) much worse than solution-based ({sol})");
}

#[test]
fn simulation_and_threaded_solver_reach_similar_accuracy() {
    // The semi-async model with moderate asynchrony and the real threaded
    // local-res solver should land within a couple of orders of magnitude
    // of each other after the same number of corrections.
    let s = paper_setup(TestSet::SevenPt, 8);
    let b = random_rhs(s.n(), 6);
    let sim_opts = model_opts(|o| {
        o.model = ModelKind::SemiAsync;
        o.alpha = 0.8;
        o.delta = 0;
        o.updates_per_grid = 20;
        o.seed = 11;
    });
    let sim = simulate(&s, AdditiveMethod::Multadd, &b, &sim_opts);
    let mut opts = AsyncOptions::default();
    opts.t_max = 20;
    opts.n_threads = 4;
    let thr = solve_async_probed(&s, &b, &opts, &NoopProbe);
    let ratio = (sim.final_relres / thr.relres).max(thr.relres / sim.final_relres);
    assert!(ratio < 1e3, "simulation {} vs threaded {}", sim.final_relres, thr.relres);
}

#[test]
fn simulate_is_bitwise_reproducible_for_a_fixed_seed() {
    // The documented guarantee on `models::simulate`: same setup, rhs, and
    // `ModelOptions` (seed included) ⇒ bit-identical `ModelResult`, for
    // every model kind and with nonzero delay in play.
    let s = paper_setup(TestSet::SevenPt, 7);
    let b = random_rhs(s.n(), 21);
    for model in [ModelKind::SemiAsync, ModelKind::FullAsyncSolution, ModelKind::FullAsyncResidual]
    {
        let opts = model_opts(|o| {
            o.model = model;
            o.alpha = 0.35;
            o.delta = 5;
            o.updates_per_grid = 15;
            o.seed = 77;
        });
        let a = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        let c = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        assert_eq!(
            a.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            c.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{model:?}: x not bit-identical across replays"
        );
        assert_eq!(a.final_relres.to_bits(), c.final_relres.to_bits(), "{model:?}");
        assert_eq!(a.instants, c.instants, "{model:?}");
        assert_eq!(a.grid_updates, c.grid_updates, "{model:?}");
        // A different seed must actually change the sampled trajectory.
        let other = simulate(
            &s,
            AdditiveMethod::Multadd,
            &b,
            &model_opts(|o| {
                o.model = model;
                o.alpha = 0.35;
                o.delta = 5;
                o.updates_per_grid = 15;
                o.seed = 78;
            }),
        );
        assert_ne!(
            a.final_relres.to_bits(),
            other.final_relres.to_bits(),
            "{model:?}: seed 78 replayed seed 77 exactly"
        );
    }
}

#[test]
fn grid_size_independence_of_the_semi_async_model() {
    // Figure 1's headline: the final residual after 20 updates per grid is
    // roughly flat in the grid size.
    let mut finals = Vec::new();
    for n in [6usize, 8, 10] {
        let s = paper_setup(TestSet::TwentySevenPt, n);
        let b = random_rhs(s.n(), 8);
        let opts = model_opts(|o| {
            o.model = ModelKind::SemiAsync;
            o.alpha = 0.5;
            o.delta = 0;
            o.updates_per_grid = 20;
            o.seed = 13;
        });
        finals.push(simulate_mean(&s, AdditiveMethod::Multadd, &b, &opts, 3));
    }
    for w in finals.windows(2) {
        let ratio = (w[1] / w[0]).max(w[0] / w[1]);
        assert!(ratio < 100.0, "relres not size-independent: {finals:?}");
    }
}
