//! The sharded execution model: one worker per shard, a hub for coarse
//! corrections, everything over explicit messages.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example sharded_solve [n_shards] [nx]
//! ```
//!
//! Solves a 27-point Poisson problem with the production transport
//! (lock-free in-process rings), then replays the same problem over a
//! lossy seeded `VirtualTransport` under a `VirtualSched` — twice, to show
//! the replay is bit-identical fingerprint-for-fingerprint even while 40 %
//! of the data messages are dropped.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{MgOptions, MgSetup, Solver};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_27pt};
use asyncmg_shard::{solve_sharded_sched, ShardOptions, ShardedExt, VirtualTransport};
use asyncmg_telemetry::NoopProbe;
use asyncmg_threads::VirtualSched;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let nx: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    let a = laplacian_27pt(nx, nx, nx);
    let h = build_hierarchy(a, &AmgOptions::default());
    let setup = MgSetup::new(h, MgOptions::default());
    let b = random_rhs(setup.n(), 7);
    println!(
        "27pt {nx}³: {} rows, {} levels, {n_shards} shards + 1 hub\n",
        setup.n(),
        setup.n_levels()
    );

    // 1. Production path: in-process SPSC rings, OS scheduling.
    let result = Solver::new(&setup).tolerance(1e-8).t_max(400).sharded(n_shards).run(&b);
    println!(
        "in-process : relres {:9.2e} ({:?}), {} hub cycles, shard epochs {:?}",
        result.relres, result.outcome, result.hub_cycles, result.shard_epochs
    );
    println!(
        "             {} msgs sent, {} delivered, {} reductions published",
        result.stats.total_sent(),
        result.stats.total_delivered(),
        result.reductions.len()
    );

    // 2. Deterministic path: seeded lossy fabric under a virtual schedule.
    let opts =
        ShardOptions { n_shards, t_max: 40, tolerance: Some(1e-8), ..ShardOptions::default() };
    let lossy = |seed: u64| {
        let net = VirtualTransport::with_profile(n_shards + 1, seed, 12, 0.4);
        let sched = VirtualSched::new(seed);
        solve_sharded_sched(&setup, &b, &opts, &net, &sched, None, &NoopProbe)
    };
    let first = lossy(42);
    let second = lossy(42);
    println!(
        "\nlossy replay: relres {:9.2e}, {} of {} data msgs dropped",
        first.relres,
        first.stats.total_dropped(),
        first.stats.total_sent()
    );
    assert_eq!(first.x, second.x, "same seed must replay bit-identically");
    assert_eq!(first.relres, second.relres);
    println!("bit-identical across replays: yes");
}
