//! The solver service: hierarchy caching, batched dispatch, and deadlines.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example service_solve
//! ```
//!
//! Three solves against two distinct matrices. The first solve of each
//! matrix pays for the AMG setup (a cache miss); the repeat solve finds
//! its hierarchy warm and skips straight to cycling. A second round
//! coalesces three right-hand sides for one matrix into a single blocked
//! dispatch — with answers bit-identical to solving each alone.

use std::sync::Arc;
use std::time::Instant;

use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_service::{ServiceOptions, SolveRequest, SolverService};

fn main() {
    let service = SolverService::new(ServiceOptions::default());

    // Two distinct problems share the one service.
    let poisson = Arc::new(laplacian_7pt(16, 16, 16));
    let slab = Arc::new(laplacian_7pt(24, 24, 8));
    println!("matrices: poisson {} rows, slab {} rows\n", poisson.nrows(), slab.nrows());

    // 1. Three sequential solves, two matrices: miss, miss, hit.
    for (name, a, seed) in
        [("poisson", &poisson, 0u64), ("slab", &slab, 1), ("poisson again", &poisson, 2)]
    {
        let req = SolveRequest::new(a.clone(), random_rhs(a.nrows(), seed)).tolerance(1e-8);
        let t0 = Instant::now();
        let r = service.solve(req).expect("solve");
        println!(
            "{name:<13}: relres {:9.2e} in {:2} cycles, {:>5} cache, {:.1?}",
            r.relres,
            r.cycles,
            if r.cache_hit { "warm" } else { "cold" },
            t0.elapsed()
        );
    }

    // 2. Batched dispatch: three queued right-hand sides for the same
    //    matrix ride one blocked V-cycle sweep.
    let tickets: Vec<_> = (10..13)
        .map(|seed| {
            let req = SolveRequest::new(poisson.clone(), random_rhs(poisson.nrows(), seed))
                .tolerance(1e-8);
            service.submit(req).expect("submit")
        })
        .collect();
    let t0 = Instant::now();
    service.drain();
    println!("\nbatched      : 3 rhs drained in {:.1?}", t0.elapsed());
    for t in tickets {
        match service.take(t) {
            asyncmg_service::TicketState::Ready(asyncmg_service::RequestStatus::Completed(r)) => {
                println!(
                    "  ticket {:>2}  : relres {:9.2e}, batch of {}",
                    t.id(),
                    r.relres,
                    r.batch_size
                )
            }
            other => println!("  ticket {:>2}  : {other:?}", t.id()),
        }
    }

    let stats = service.stats();
    println!(
        "\nservice      : {} completed, {} batches, cache {} hit / {} miss / {} evicted",
        stats.completed, stats.batches, stats.cache_hits, stats.cache_misses, stats.evictions
    );
    println!(
        "cache events : {:?}",
        service.cache_events().iter().map(|e| e.name()).collect::<Vec<_>>()
    );
}
