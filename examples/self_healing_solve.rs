//! Self-healing sharded solves: a shard crashes mid-run and the solve
//! heals itself — failure detection, row adoption, reliable control-plane
//! delivery — then the resilient session degrades through sharded rungs.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example self_healing_solve [n_shards] [crash_epoch]
//! ```
//!
//! Three acts:
//!
//! 1. An undefended sharded solve with shard 1 crashed at `crash_epoch`:
//!    the survivors finish their budget but the dead shard's error is
//!    stranded.
//! 2. The same crash with recovery armed (`ShardRecovery`), over a lossy
//!    seeded fabric: the hub declares the death, a neighbor adopts the
//!    rows, retransmission carries the control plane through 20 % message
//!    loss, and the solve converges — bit-identically replayable.
//! 3. A resilient session on the sharded ladder: each failed attempt
//!    halves the shard count (`Sharded 4 → 2 → 1 → …`), warm-started from
//!    the best hub-assembled checkpoint.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{MgOptions, MgSetup, RetryPolicy, Solver};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_shard::{
    sharded_ladder, ShardRecovery, ShardedExt, ShardedRungDriver, VirtualTransport,
};
use asyncmg_threads::{Fault, FaultPlan, VirtualClock, VirtualSched};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let crash_epoch: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let a = laplacian_7pt(8, 8, 8);
    let setup = MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default());
    let b = random_rhs(setup.n(), 7);
    println!(
        "7pt 8³: {} rows, {n_shards} shards + 1 hub, shard 1 crashes at epoch {crash_epoch}\n",
        setup.n()
    );

    let plan = FaultPlan::new(9).with(Fault::Crash { team: 1, at_round: crash_epoch });
    let seed = 42u64;
    let ranks = n_shards + 1;

    // 1. Undefended: the crash strands shard 1's rows.
    let sched = VirtualSched::new(seed);
    let net = VirtualTransport::new(ranks, seed);
    let undefended = Solver::new(&setup)
        .tolerance(1e-6)
        .t_max(400)
        .sharded(n_shards)
        .sched(&sched)
        .transport(&net)
        .fault_plan(Some(&plan))
        .run(&b);
    println!(
        "undefended : relres {:9.2e} ({:?}) — the dead shard's error is stranded",
        undefended.relres, undefended.outcome
    );

    // 2. Recovery armed, 20 % data loss: detect, evict, adopt, converge.
    let heal = |seed: u64| {
        let sched = VirtualSched::new(seed);
        let net = VirtualTransport::with_profile(ranks, seed, 4, 0.2);
        let clock = VirtualClock::new();
        Solver::new(&setup)
            .tolerance(1e-6)
            .t_max(400)
            .sharded(n_shards)
            .recovery(Some(ShardRecovery::default()))
            .sched(&sched)
            .clock(&clock)
            .transport(&net)
            .fault_plan(Some(&plan))
            .run(&b)
    };
    let healed = heal(seed);
    let rec = &healed.recovery;
    println!(
        "self-healed: relres {:9.2e} ({:?}) over a 20 % lossy fabric",
        healed.relres, healed.outcome
    );
    println!(
        "             dead {:?}, adoptions {:?}, {} retransmits, {} acks, {} checkpoints",
        rec.dead_shards, rec.adoptions, rec.retransmits, rec.acks, rec.checkpoints
    );
    let replay = heal(seed);
    println!(
        "             replay bit-identical: {}",
        healed.x.iter().zip(&replay.x).all(|(u, v)| u.to_bits() == v.to_bits())
            && healed.relres.to_bits() == replay.relres.to_bits()
    );

    // 3. The sharded degradation ladder inside a resilient session.
    let driver = ShardedRungDriver::default();
    let ladder = sharded_ladder(n_shards as u32);
    let report = Solver::new(&setup)
        .tolerance(1e-8)
        .t_max(12)
        .retry(RetryPolicy { max_attempts: 9, ..RetryPolicy::default() })
        .session_seed(11)
        .ladder(&ladder)
        .shard_driver(&driver)
        .resilient(&b);
    println!("\nsession    : relres {:9.2e}, converged {}", report.relres, report.converged);
    for a in &report.attempts {
        println!(
            "  attempt {}: {:<12} relres {:9.2e}{}{}",
            a.index,
            a.rung.name(),
            a.relres,
            if a.warm_start { "  warm-start" } else { "" },
            a.escalation.map(|e| format!("  → {}", e.name())).unwrap_or_default()
        );
    }
}
