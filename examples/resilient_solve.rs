//! Resilient solve sessions: checkpoint/rollback, retry-with-backoff, and
//! the automatic degradation ladder surviving injected faults.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example resilient_solve
//! ```
//!
//! A fault plan crashes one grid team and corrupts a correction write with
//! `NaN`. A plain async solve ends `Faulted`/`Degraded`; a resilient
//! session retries from the best checkpoint, walking the degradation
//! ladder (`async atomic → async lock → semi-async → sync mult → PCG`)
//! until the tolerance is met or the retry budget runs out.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::{Method, RetryPolicy, Solver};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_threads::{Corruption, Fault, FaultPlan};
use std::time::Duration;

fn main() {
    // 1. A 3-D Poisson problem and its AMG hierarchy.
    let n = 16;
    let a = laplacian_7pt(n, n, n);
    println!("matrix: {} rows, {} non-zeros", a.nrows(), a.nnz());
    let b = random_rhs(a.nrows(), 42);
    let setup = MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default());

    // 2. A hostile environment: grid team 1 crashes after two rounds and
    //    grid 2's first correction write is corrupted to NaN.
    let plan = FaultPlan::new(0xFA17)
        .with(Fault::Crash { team: 1, at_round: 2 })
        .with(Fault::CorruptWrite { grid: 2, at_round: 1, kind: Corruption::Nan });

    // 3. A plain async solve under this plan ends in a structured failure —
    //    the guards keep x finite, but the crashed team stalls convergence.
    let plain = Solver::new(&setup)
        .method(Method::Multadd)
        .threads(4)
        .t_max(30)
        .tolerance(1e-6)
        .fault_plan(&plan)
        .run(&b);
    println!(
        "plain async    : relres {:9.2e} ({:?}, {} faults logged)",
        plain.relres,
        plain.outcome,
        plain.faults.len()
    );

    // 4. The same configuration as a resilient session: checkpoints are
    //    snapshotted by the watchdog, failed attempts retry with
    //    exponential backoff from the best checkpoint, and each retry
    //    escalates one ladder rung with hardened recovery options.
    let report = Solver::new(&setup)
        .method(Method::Multadd)
        .threads(4)
        .t_max(30)
        .tolerance(1e-6)
        .fault_plan(&plan)
        .retry(RetryPolicy {
            max_attempts: 6,
            backoff: Duration::from_millis(2),
            deadline: Some(Duration::from_secs(30)),
        })
        .checkpoint_every(Duration::from_millis(2))
        .with_trace()
        .resilient(&b);

    println!(
        "resilient      : relres {:9.2e} (converged: {}, {} attempts, {:.1?})",
        report.relres,
        report.converged,
        report.attempts.len(),
        report.elapsed
    );
    for a in &report.attempts {
        println!(
            "  attempt {}: {:<12} relres {:9.2e} {:?}{}{}",
            a.index,
            a.rung.name(),
            a.relres,
            a.outcome,
            if a.warm_start { ", warm start" } else { "" },
            a.escalation.map_or(String::new(), |e| format!(" → escalate ({})", e.name())),
        );
    }
    println!(
        "checkpoints    : {} taken, {} restored, best relres {:?}",
        report.checkpoints.taken, report.checkpoints.restored, report.checkpoints.best_relres
    );
    if let Some(trace) = &report.trace {
        println!(
            "trace          : {} attempt records, {} checkpoint events (asyncmg-trace-v2)",
            trace.attempts.len(),
            trace.checkpoints.len()
        );
    }
}
