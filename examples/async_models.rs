//! Simulate the asynchronous multigrid models of Section III: the effect of
//! the minimum update probability α and the maximum read delay δ on the
//! final residual (miniature Figures 1 and 2).
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example async_models [grid_length]
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::AdditiveMethod;
use asyncmg_core::models::{simulate_mean, ModelKind, ModelOptions};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_27pt};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    let runs = 5;
    let a = laplacian_27pt(n, n, n);
    println!("27pt, {} rows; mean of {runs} runs, 20 updates per grid\n", a.nrows());
    let b = random_rhs(a.nrows(), 3);
    let h = build_hierarchy(a, &AmgOptions { aggressive_levels: 1, ..Default::default() });
    let setup = MgSetup::new(h, MgOptions::default());

    let sync = solve_mult_probed(&setup, &b, 20, None, &NoopProbe);
    println!("synchronous Mult after 20 V(1,1)-cycles: {:9.2e}\n", sync.final_relres());

    println!("semi-async (δ = 0), relres vs minimum update probability α:");
    for method in [AdditiveMethod::Afacx, AdditiveMethod::Multadd] {
        print!("  {:<8}", method.name());
        for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let mut opts = ModelOptions::default();
            opts.model = ModelKind::SemiAsync;
            opts.alpha = alpha;
            opts.delta = 0;
            opts.updates_per_grid = 20;
            opts.seed = 1;
            let r = simulate_mean(&setup, method, &b, &opts, runs);
            print!("  α={alpha:.1}:{r:9.2e}");
        }
        println!();
    }

    println!("\nfull-async (α = .1), relres vs maximum delay δ:");
    for model in [ModelKind::FullAsyncSolution, ModelKind::FullAsyncResidual] {
        let name = match model {
            ModelKind::FullAsyncSolution => "solution-based",
            ModelKind::FullAsyncResidual => "residual-based",
            ModelKind::SemiAsync => unreachable!(),
        };
        for method in [AdditiveMethod::Afacx, AdditiveMethod::Multadd] {
            print!("  {:<8} {name:<15}", method.name());
            for delta in [1usize, 2, 4, 8, 16] {
                let mut opts = ModelOptions::default();
                opts.model = model;
                opts.alpha = 0.1;
                opts.delta = delta;
                opts.updates_per_grid = 20;
                opts.seed = 1;
                let r = simulate_mean(&setup, method, &b, &opts, runs);
                print!("  δ={delta:>2}:{r:9.2e}");
            }
            println!();
        }
    }
}
