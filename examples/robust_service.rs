//! The fault-tolerant service plane under deliberate attack.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example robust_service
//! ```
//!
//! A *defended* service (`ServiceOptions::resilience`) runs a scripted
//! chaos campaign against itself on a virtual clock:
//!
//! 1. a cached hierarchy is poisoned twice — the integrity checksum
//!    quarantines and rebuilds it, and the second strike trips the
//!    per-fingerprint circuit breaker open;
//! 2. while the breaker is open, requests fail fast as `CircuitOpen` with
//!    a retry-after hint instead of burning cycles;
//! 3. after the backoff a half-open probe runs clean and the breaker
//!    re-closes;
//! 4. a solution column is corrupted mid-batch — its healthy batch-mates
//!    complete untouched while the sick column is rescued solo down the
//!    degradation ladder, under an injected crash + corrupt-write fault
//!    plan;
//! 5. a low high-water mark sheds the lowest-priority, most-slack request
//!    when the queue overfills — the shed ticket still resolves.
//!
//! Every decision lands in the service event log; the run is bit-identical
//! on replay because all timing reads the virtual clock.

use std::sync::Arc;
use std::time::Duration;

use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_service::{
    ChaosEvent, ChaosPlan, Priority, RequestStatus, ResilienceOptions, ServiceOptions,
    SolveRequest, SolverService, TicketState,
};
use asyncmg_threads::{Corruption, Fault, FaultPlan, VirtualClock};

fn main() {
    let chaos = ChaosPlan::new()
        .with(ChaosEvent::PoisonHierarchy { dispatch: 1 })
        .with(ChaosEvent::PoisonHierarchy { dispatch: 2 })
        .with(ChaosEvent::CorruptColumn { dispatch: 4, column: 1, kind: Corruption::Nan });
    let fault_plan = FaultPlan::new(7)
        .with(Fault::Crash { team: 0, at_round: 2 })
        .with(Fault::CorruptWrite { grid: 0, at_round: 1, kind: Corruption::BitFlip });
    let opts = ServiceOptions {
        batch_window: 4,
        shed_high_water: Some(6),
        resilience: Some(ResilienceOptions {
            breaker_threshold: 2,
            breaker_backoff: Duration::from_millis(5),
            session_seed: Some(7),
            fault_plan: Some(fault_plan),
            chaos: Some(chaos),
            ..Default::default()
        }),
        ..Default::default()
    };
    let clock = Arc::new(VirtualClock::new());
    let service = SolverService::with_clock(opts, clock.clone());
    let a = Arc::new(laplacian_7pt(8, 8, 8));
    println!("defended service, {} rows, scripted chaos\n", a.nrows());

    let mut seed = 0u64;
    let mut submit = |priority: Priority| {
        let req = SolveRequest::new(a.clone(), random_rhs(a.nrows(), seed))
            .tolerance(1e-8)
            .t_max(60)
            .priority(priority);
        seed += 1;
        service.submit(req).expect("queue sized for the campaign")
    };
    let outcome = |t| match service.take(t) {
        TicketState::Ready(RequestStatus::Completed(r)) => format!(
            "completed, relres {:9.2e}{}",
            r.relres,
            if r.rescued { " (rescued)" } else { "" }
        ),
        TicketState::Ready(RequestStatus::Rejected(rej)) => format!("rejected: {rej}"),
        other => format!("{other:?}"),
    };

    // Dispatch 0 builds clean; dispatches 1 and 2 are poisoned — two
    // quarantines, breaker opens.
    for round in 0..3 {
        let tickets: Vec<_> = (0..4).map(|_| submit(Priority::Normal)).collect();
        service.process_batch();
        println!("round {round}: {}", outcome(tickets[0]));
    }

    // Breaker open: fail-fast.
    let t = submit(Priority::Normal);
    service.process_batch();
    println!("open   : {}", outcome(t));

    // Backoff elapses; the half-open probe re-closes the breaker.
    clock.advance(Duration::from_millis(6));
    let t = submit(Priority::Normal);
    service.process_batch();
    println!("probe  : {}", outcome(t));

    // Dispatch 4: column 1 is corrupted and rescued; its batch-mates are
    // untouched.
    let tickets: Vec<_> = (0..4).map(|_| submit(Priority::Normal)).collect();
    service.process_batch();
    for (i, t) in tickets.into_iter().enumerate() {
        println!("col {i}  : {}", outcome(t));
    }

    // Overload: the 7th queued request pushes past the high-water mark and
    // the lowest-priority, most-slack victim is shed.
    let victim = submit(Priority::Low);
    for _ in 0..6 {
        submit(Priority::High);
    }
    println!("shed   : {}", outcome(victim));
    service.drain();

    let stats = service.stats();
    println!(
        "\nstats  : {} completed, {} quarantined, {} rescued, {} shed, breaker {}x open / {}x closed",
        stats.completed,
        stats.quarantined,
        stats.rescued,
        stats.shed,
        stats.breaker_opened,
        stats.breaker_closed
    );
    println!(
        "events : {:?}",
        service.service_events().iter().map(|e| e.name()).collect::<Vec<_>>()
    );
}
