//! Compare every solver variant on the 27-point Poisson problem — a
//! miniature of the paper's Table I row block for one matrix.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example poisson_cube [grid_length] [threads]
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::{solve_additive_probed, AdditiveMethod};
use asyncmg_core::asynchronous::{solve_async_probed, AsyncOptions, ResComp, WriteMode};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::parallel_mult::solve_mult_threaded_probed;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_27pt};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let t_max = 20;

    let a = laplacian_27pt(n, n, n);
    println!(
        "27pt, grid length {n}: {} rows, {} nnz, {threads} threads, {t_max} V-cycles\n",
        a.nrows(),
        a.nnz()
    );
    let b = random_rhs(a.nrows(), 7);
    let h = build_hierarchy(a, &AmgOptions { aggressive_levels: 1, ..Default::default() });
    let setup = MgSetup::new(h, MgOptions::default());

    println!("{:<38} {:>10} {:>9}", "method", "relres", "time");
    let seq = solve_mult_probed(&setup, &b, t_max, None, &NoopProbe);
    println!("{:<38} {:>10.2e} {:>9}", "Mult (sequential)", seq.final_relres(), "-");
    let m = solve_mult_threaded_probed(&setup, &b, threads, t_max, None, &NoopProbe);
    println!("{:<38} {:>10.2e} {:>8.1?}", "sync Mult (threaded)", m.relres, m.elapsed);

    let seq_add =
        solve_additive_probed(&setup, AdditiveMethod::Multadd, &b, t_max, None, &NoopProbe);
    println!("{:<38} {:>10.2e} {:>9}", "sync Multadd (sequential)", seq_add.final_relres(), "-");

    // AsyncOptions is #[non_exhaustive]: derive each variant from the default.
    let cfg = |f: &dyn Fn(&mut AsyncOptions)| {
        let mut o = AsyncOptions::default();
        o.t_max = t_max;
        o.n_threads = threads;
        f(&mut o);
        o
    };
    for (label, opts) in [
        ("sync Multadd, lock-write", cfg(&|o| o.sync = true)),
        ("Multadd, lock-write, local-res", cfg(&|_| ())),
        ("Multadd, lock-write, global-res", cfg(&|o| o.res_comp = ResComp::Global)),
        ("Multadd, atomic-write, local-res", cfg(&|o| o.write = WriteMode::Atomic)),
        (
            "r-Multadd, atomic-write, local-res",
            cfg(&|o| {
                o.write = WriteMode::Atomic;
                o.res_comp = ResComp::ResidualBased;
            }),
        ),
        ("AFACx, lock-write", cfg(&|o| o.method = AdditiveMethod::Afacx)),
    ] {
        let r = solve_async_probed(&setup, &b, &opts, &NoopProbe);
        println!("{label:<38} {:>10.2e} {:>8.1?}", r.relres, r.elapsed);
    }
}
