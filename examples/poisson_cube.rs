//! Compare every solver variant on the 27-point Poisson problem — a
//! miniature of the paper's Table I row block for one matrix.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example poisson_cube [grid_length] [threads]
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::{solve_additive, AdditiveMethod};
use asyncmg_core::asynchronous::{solve_async, AsyncOptions, ResComp, WriteMode};
use asyncmg_core::mult::solve_mult;
use asyncmg_core::parallel_mult::solve_mult_threaded;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_27pt};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let t_max = 20;

    let a = laplacian_27pt(n, n, n);
    println!("27pt, grid length {n}: {} rows, {} nnz, {threads} threads, {t_max} V-cycles\n",
        a.nrows(), a.nnz());
    let b = random_rhs(a.nrows(), 7);
    let h = build_hierarchy(a, &AmgOptions { aggressive_levels: 1, ..Default::default() });
    let setup = MgSetup::new(h, MgOptions::default());

    println!("{:<38} {:>10} {:>9}", "method", "relres", "time");
    let seq = solve_mult(&setup, &b, t_max);
    println!("{:<38} {:>10.2e} {:>9}", "Mult (sequential)", seq.final_relres(), "-");
    let m = solve_mult_threaded(&setup, &b, threads, t_max);
    println!("{:<38} {:>10.2e} {:>8.1?}", "sync Mult (threaded)", m.relres, m.elapsed);

    let seq_add = solve_additive(&setup, AdditiveMethod::Multadd, &b, t_max);
    println!(
        "{:<38} {:>10.2e} {:>9}",
        "sync Multadd (sequential)",
        seq_add.final_relres(),
        "-"
    );

    for (label, opts) in [
        (
            "sync Multadd, lock-write",
            AsyncOptions { sync: true, t_max, n_threads: threads, ..Default::default() },
        ),
        (
            "Multadd, lock-write, local-res",
            AsyncOptions { t_max, n_threads: threads, ..Default::default() },
        ),
        (
            "Multadd, lock-write, global-res",
            AsyncOptions {
                res_comp: ResComp::Global,
                t_max,
                n_threads: threads,
                ..Default::default()
            },
        ),
        (
            "Multadd, atomic-write, local-res",
            AsyncOptions {
                write: WriteMode::Atomic,
                t_max,
                n_threads: threads,
                ..Default::default()
            },
        ),
        (
            "r-Multadd, atomic-write, local-res",
            AsyncOptions {
                write: WriteMode::Atomic,
                residual_based: true,
                t_max,
                n_threads: threads,
                ..Default::default()
            },
        ),
        (
            "AFACx, lock-write",
            AsyncOptions {
                method: AdditiveMethod::Afacx,
                t_max,
                n_threads: threads,
                ..Default::default()
            },
        ),
    ] {
        let r = solve_async(&setup, &b, &opts);
        println!("{label:<38} {:>10.2e} {:>8.1?}", r.relres, r.elapsed);
    }
}
