//! Solve the multi-material cantilever elasticity problem with all four
//! smoothers (the paper's hardest test set).
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example elasticity_beam [elements_along_beam]
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::asynchronous::{solve_async_probed, AsyncOptions};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::elasticity::{elasticity_beam, BeamMaterials};
use asyncmg_problems::rhs::random_rhs;
use asyncmg_smoothers::SmootherKind;

fn main() {
    let ex: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    let c = (ex / 4).max(1);
    let a = elasticity_beam(ex, c, c, [4.0, 1.0, 1.0], BeamMaterials::default());
    println!("elasticity beam {ex}x{c}x{c} elements: {} dofs, {} nnz", a.nrows(), a.nnz());
    let b = random_rhs(a.nrows(), 11);
    // The unknown approach (num_functions = 3) keeps the three displacement
    // components separate in coarsening/interpolation — without it scalar
    // AMG stagnates on elasticity (see DESIGN.md).
    let h = build_hierarchy(a, &AmgOptions { num_functions: 3, ..Default::default() });
    println!(
        "hierarchy: {} levels {:?}, complexity {:.2}\n",
        h.n_levels(),
        h.level_sizes(),
        h.operator_complexity()
    );

    println!("{:<12} {:>14} {:>16}", "smoother", "Mult relres", "async Multadd");
    for kind in [
        SmootherKind::WJacobi { omega: 0.5 },
        SmootherKind::L1Jacobi,
        SmootherKind::HybridJgs,
        SmootherKind::AsyncGs,
    ] {
        let mut mg = MgOptions::default();
        mg.smoother = kind;
        mg.interp_omega = 0.5;
        let setup = MgSetup::new(h.clone(), mg);
        let mult = solve_mult_probed(&setup, &b, 40, None, &NoopProbe);
        let mut opts = AsyncOptions::default();
        opts.t_max = 40;
        opts.n_threads = 4;
        let asy = solve_async_probed(&setup, &b, &opts, &NoopProbe);
        println!("{:<12} {:>14.2e} {:>16.2e}", kind.name(), mult.final_relres(), asy.relres);
    }
}
