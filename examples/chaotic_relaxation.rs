//! Chaotic relaxation (Section II.C): the classical asynchronous iterative
//! methods the paper builds upon, and the convergence condition ρ(|G|) < 1.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example chaotic_relaxation [grid_length]
//! ```

use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_smoothers::chaotic::{async_jacobi_solve, jacobi_solve, rho_abs_jacobi};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    let a = laplacian_7pt(n, n, n);
    let b = random_rhs(a.nrows(), 9);
    println!("7pt Laplacian, {} rows\n", a.nrows());

    println!("asynchronous convergence condition (Equation 5): rho(|G|) < 1");
    for omega in [0.5, 0.9, 1.0, 1.5, 2.0] {
        let rho = rho_abs_jacobi(&a, omega, 200);
        let verdict = if rho < 1.0 { "converges" } else { "may diverge" };
        println!("  omega = {omega:<4}  rho(|G|) = {rho:.4}  -> async Jacobi {verdict}");
    }

    println!("\nweighted Jacobi (omega = .9), 200 sweeps:");
    let sync = jacobi_solve(&a, &b, 0.9, 200);
    println!("  synchronous          : relres {:9.2e}", sync.relres);
    for threads in [1usize, 2, 4, 8] {
        let asy = async_jacobi_solve(&a, &b, 0.9, 200, threads);
        println!("  asynchronous, {threads} thr  : relres {:9.2e}", asy.relres);
    }
    println!("\n(Asynchronous sweeps read whatever values are in memory; on an");
    println!("oversubscribed machine they degrade gracefully, never crash — the");
    println!("behaviour multigrid inherits in the paper's Algorithm 5.)");
}
