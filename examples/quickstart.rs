//! Quickstart: solve a 3-D Poisson problem with asynchronous Multadd.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example quickstart
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::{Method, Solver};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

fn main() {
    // 1. Assemble the 7-point Laplacian on a 20×20×20 grid.
    let n = 20;
    let a = laplacian_7pt(n, n, n);
    println!("matrix: {} rows, {} non-zeros", a.nrows(), a.nnz());
    let b = random_rhs(a.nrows(), 42);

    // 2. Build the AMG hierarchy (HMIS + classical modified interpolation,
    //    the paper's BoomerAMG configuration) and the solver setup.
    let hierarchy = build_hierarchy(a, &AmgOptions::default());
    println!(
        "hierarchy: {} levels, sizes {:?}, operator complexity {:.2}",
        hierarchy.n_levels(),
        hierarchy.level_sizes(),
        hierarchy.operator_complexity()
    );
    let setup = MgSetup::new(hierarchy, MgOptions::default());

    // 3. Classical multiplicative multigrid (the baseline, Algorithm 1),
    //    through the unified Solver builder.
    let mult = Solver::new(&setup).method(Method::Mult).t_max(20).run(&b);
    println!("sync Mult      : relres {:9.2e} after 20 V(1,1)-cycles", mult.relres);

    // 4. Asynchronous Multadd (Algorithm 5, local-res, lock-write): every
    //    grid corrects the shared solution with no global synchronisation.
    //    A monitor thread stops the run once the residual is below 1e-8.
    let report = Solver::new(&setup)
        .method(Method::Multadd)
        .threads(4)
        .t_max(100)
        .tolerance(1e-8)
        .with_trace()
        .run(&b);
    println!(
        "async Multadd  : relres {:9.2e} (converged: {}, {:?} corrections, {:.1?})",
        report.relres, report.converged, report.grid_corrections, report.elapsed
    );
    if let Some(trace) = &report.trace {
        let n_events: usize = trace.grids.iter().map(|g| g.events.len()).sum();
        println!(
            "trace          : {} residual samples, {} correction events",
            trace.residual_history.len(),
            n_events
        );
    }
}
