//! Quickstart: solve a 3-D Poisson problem with asynchronous Multadd.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example quickstart
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::AdditiveMethod;
use asyncmg_core::asynchronous::{solve_async, AsyncOptions};
use asyncmg_core::mult::solve_mult;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

fn main() {
    // 1. Assemble the 7-point Laplacian on a 20×20×20 grid.
    let n = 20;
    let a = laplacian_7pt(n, n, n);
    println!("matrix: {} rows, {} non-zeros", a.nrows(), a.nnz());
    let b = random_rhs(a.nrows(), 42);

    // 2. Build the AMG hierarchy (HMIS + classical modified interpolation,
    //    the paper's BoomerAMG configuration) and the solver setup.
    let hierarchy = build_hierarchy(a, &AmgOptions::default());
    println!(
        "hierarchy: {} levels, sizes {:?}, operator complexity {:.2}",
        hierarchy.n_levels(),
        hierarchy.level_sizes(),
        hierarchy.operator_complexity()
    );
    let setup = MgSetup::new(hierarchy, MgOptions::default());

    // 3. Classical multiplicative multigrid (the baseline, Algorithm 1).
    let mult = solve_mult(&setup, &b, 20);
    println!("sync Mult      : relres {:9.2e} after 20 V(1,1)-cycles", mult.final_relres());

    // 4. Asynchronous Multadd (Algorithm 5, local-res, lock-write): every
    //    grid corrects the shared solution with no global synchronisation.
    let async_res = solve_async(
        &setup,
        &b,
        &AsyncOptions {
            method: AdditiveMethod::Multadd,
            t_max: 20,
            n_threads: 4,
            ..Default::default()
        },
    );
    println!(
        "async Multadd  : relres {:9.2e} after 20 corrections per grid ({:?} corrections, {:.1?})",
        async_res.relres, async_res.grid_corrections, async_res.elapsed
    );
}
