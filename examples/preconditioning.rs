//! Multigrid as a preconditioner: the BPX story of Section II.B.
//!
//! BPX diverges when used as a standalone additive *solver* (the
//! over-correction problem that Multadd and AFACx fix), but it is an
//! excellent *preconditioner*. This example compares plain CG against CG
//! preconditioned with a V-cycle, BPX, and Multadd, and round-trips the
//! matrix through the Matrix Market format.
//!
//! ```sh
//! cargo run --release -p asyncmg-apps --example preconditioning [grid_length]
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::{solve_additive_probed, AdditiveMethod};
use asyncmg_core::krylov::{pcg, AdditivePrec, IdentityPrec, JacobiPrec, VCyclePrec};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_sparse::io::{read_matrix_market, write_matrix_market};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let a = laplacian_7pt(n, n, n);
    println!("7pt Laplacian, {} rows, {} nnz", a.nrows(), a.nnz());

    // Round-trip through Matrix Market, as a user with an external matrix
    // would start.
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).expect("write .mtx");
    let a = read_matrix_market(buf.as_slice()).expect("read .mtx");
    println!("round-tripped through Matrix Market ({} bytes)\n", buf.len());

    let b = random_rhs(a.nrows(), 5);
    let h = build_hierarchy(a.clone(), &AmgOptions::default());
    let setup = MgSetup::new(h, MgOptions::default());
    let tol = 1e-8;

    // BPX as a standalone solver over-corrects:
    let bpx_solver = solve_additive_probed(&setup, AdditiveMethod::Bpx, &b, 20, None, &NoopProbe);
    println!(
        "BPX as a *solver*      : relres {:9.2e} after 20 cycles (diverges — Section II.B)",
        bpx_solver.final_relres()
    );

    println!("\nCG to relres < {tol:.0e}:");
    let plain = pcg(&a, &b, tol, 2000, &mut IdentityPrec);
    println!("  no preconditioner    : {:>4} iterations", plain.history.len());
    let mut jac = JacobiPrec::new(&a);
    let r = pcg(&a, &b, tol, 2000, &mut jac);
    println!("  Jacobi               : {:>4} iterations", r.history.len());
    let mut bpx = AdditivePrec::new(&setup, AdditiveMethod::Bpx);
    let r = pcg(&a, &b, tol, 2000, &mut bpx);
    println!("  BPX                  : {:>4} iterations", r.history.len());
    let mut ma = AdditivePrec::new(&setup, AdditiveMethod::Multadd);
    let r = pcg(&a, &b, tol, 2000, &mut ma);
    println!("  Multadd              : {:>4} iterations", r.history.len());
    let mut vc = VCyclePrec::new(&setup);
    let r = pcg(&a, &b, tol, 2000, &mut vc);
    println!("  V(1,1)-cycle         : {:>4} iterations", r.history.len());
}
